//! B-stationary tiled kernels (§3.1.1): a 64×K tile of B lives in shared
//! memory; thread blocks walk the tiles of a vertical strip of A
//! (column-major traversal, §3.1.3) and commit partial sums of C with
//! atomics (2× channel occupancy).
//!
//! Three variants of the A-side tile format:
//! * [`bstat_tiled_csr`] — strips kept in CSR: every tile scans a full
//!   `tile_h + 1` row-pointer window and burns a 1-active-lane check per
//!   empty row (the Figure 6/7 pathology).
//! * [`bstat_tiled_dcsr_offline`] — tiles pre-converted to DCSR and stored
//!   in DRAM: compute-efficient but pays the tiled-metadata footprint of
//!   Figure 9 on every read (and, in reality, an offline conversion pass
//!   this kernel does not charge — §5.2 calls its results optimistic).
//! * [`bstat_tiled_dcsr_online`] — the paper's proposal: DRAM holds only
//!   the compact CSC; the near-memory engine streams freshly-minted DCSR
//!   tiles to the SM over the crossbar, so the DRAM-side cost is the CSC
//!   elements themselves.

use crate::device::{CscDevice, DenseDevice, TiledDcsrDevice, WORD};
use crate::KernelRun;
use nmt_engine::{
    convert_matrix_farm_obs, publish_conversion, publish_farm, publish_pipeline, simulate_strip,
    ConversionStats, FarmConfig, PipelineConfig, PipelineResult,
};
use nmt_formats::{Csc, DenseMatrix, SparseMatrix, TiledCsr, TiledDcsr};
use nmt_obs::ObsContext;
use nmt_sim::{BlockCtx, Gpu, InstrClass, SimError, TrafficClass};

/// Per-row inner loop shared by every B-stationary variant: FMA the row
/// segment against the shared-memory B tile and atomically add the partial
/// C row. Returns nothing; updates the functional output.
///
/// `cols` are tile-local column indices; `col_base` rebases them to global
/// columns in-register, so callers hand the tile's `colidx` slice straight
/// through instead of materializing a rebased copy per row. `acc` is
/// caller-provided scratch (cleared and refilled here) so the per-row
/// accumulator costs zero allocations across the whole launch.
#[allow(clippy::too_many_arguments)]
fn process_tile_row(
    ctx: &mut BlockCtx<'_>,
    c: &mut DenseMatrix,
    c_dev: &DenseDevice,
    b: &DenseMatrix,
    global_row: usize,
    cols: &[u32],
    col_base: u32,
    vals: &[f32],
    k: usize,
    acc: &mut Vec<f32>,
) {
    let warp = ctx.warp_size();
    acc.clear();
    acc.resize(k, 0.0);
    for (&cl, &v) in cols.iter().zip(vals) {
        let col = (col_base + cl) as usize;
        ctx.warp_instr(InstrClass::Integer, k.min(warp), 1);
        let mut kc = 0;
        while kc < k {
            let chunk = (k - kc).min(warp);
            // B comes from shared memory: issue cost only, no global traffic.
            ctx.shared_op(chunk as u64 * WORD, chunk);
            ctx.fma(chunk, 1);
            let brow = b.row(col);
            for x in kc..kc + chunk {
                acc[x] += v * brow[x];
            }
            kc += chunk;
        }
    }
    // Partial contribution: atomic adds over the C row (Table 1's 2x).
    let (off, bytes) = c_dev.row_segment(global_row as u64, 0, k as u64);
    ctx.atomic_add_global(&c_dev.buf, off, bytes);
    let out = c.row_mut(global_row);
    for (o, a) in out.iter_mut().zip(acc.iter()) {
        *o += a;
    }
}

/// Load the strip's B tile (tile_w rows × K columns) into shared memory.
fn load_b_tile(
    ctx: &mut BlockCtx<'_>,
    b_dev: &DenseDevice,
    strip_row0: usize,
    rows: usize,
    k: usize,
) {
    for i in 0..rows {
        let (off, bytes) = b_dev.row_segment((strip_row0 + i) as u64, 0, k as u64);
        ctx.ld_global(&b_dev.buf, off, bytes, false);
        ctx.shared_op(bytes, ctx.warp_size().min(k));
    }
}

fn check_dims(
    a_shape: nmt_formats::Shape,
    b: &DenseMatrix,
    tile_w: usize,
) -> Result<(), SimError> {
    crate::check_inner_dims(a_shape.ncols, b.nrows())?;
    // The B tile (tile_w rows x K columns) must be a plausible shared-
    // memory resident; the launch itself enforces the hard capacity limit.
    if tile_w == 0 {
        return Err(SimError::ShapeMismatch {
            detail: "tile width must be positive".into(),
        });
    }
    Ok(())
}

/// B-stationary over offline-tiled **CSR** strips.
pub fn bstat_tiled_csr(
    gpu: &mut Gpu,
    tiled: &TiledCsr,
    b: &DenseMatrix,
    tile_h: usize,
) -> Result<KernelRun, SimError> {
    let shape = tiled.shape();
    check_dims(shape, b, tiled.tile_width())?;
    let n = shape.nrows;
    let k = b.ncols();
    let tile_w = tiled.tile_width();
    // Device image: per strip, a full rowptr plus the strip's elements.
    // Strip count is known up front — reserve once instead of growing.
    let mut strip_rowptr = Vec::with_capacity(tiled.strips().len());
    let mut strip_elems = Vec::with_capacity(tiled.strips().len());
    for strip in tiled.strips() {
        strip_rowptr.push(gpu.alloc((n as u64 + 1) * WORD, TrafficClass::MatA));
        strip_elems.push(gpu.alloc((strip.nnz().max(1) as u64) * 2 * WORD, TrafficClass::MatA));
    }
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let tiles_per_strip = nmt_formats::tile_count(n, tile_h);
    // One thread block per strip: the B tile is loaded into shared memory
    // once and every tile of the strip streams past it (§3.1.1: "a tile
    // of B is loaded into the shared memory only once").
    let num_blocks = tiled.strips().len();
    let shared = tile_w * k * WORD as usize;
    let mut acc = nmt_engine::mem::take_val(true, k);
    let stats = gpu.launch(shared, num_blocks, |ctx| {
        let s = ctx.block_id;
        let strip = &tiled.strips()[s];
        load_b_tile(
            ctx,
            &b_dev,
            s * tile_w,
            strip.width.min(b.nrows() - s * tile_w),
            k,
        );
        for t in 0..tiles_per_strip {
            let row0 = t * tile_h;
            let row1 = (row0 + tile_h).min(n);
            // Full rowptr window for this tile: tile_h + 1 words, present
            // for every row whether or not it has non-zeros.
            ctx.ld_global(
                &strip_rowptr[s],
                row0 as u64 * WORD,
                (row1 - row0 + 1) as u64 * WORD,
                false,
            );
            for r in row0..row1 {
                // One lane inspects rowptr[r..r+2]; empty rows waste the warp.
                ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
                let (lo, hi) = (strip.rowptr[r] as usize, strip.rowptr[r + 1] as usize);
                if lo == hi {
                    ctx.warp_instr(InstrClass::Integer, 1, 1);
                    continue;
                }
                let seg = hi - lo;
                ctx.ld_global(
                    &strip_elems[s],
                    lo as u64 * 2 * WORD,
                    seg as u64 * 2 * WORD,
                    false,
                );
                process_tile_row(
                    ctx,
                    &mut c,
                    &c_dev,
                    b,
                    r,
                    &strip.colidx[lo..hi],
                    strip.col_start,
                    &strip.values[lo..hi],
                    k,
                    &mut acc,
                );
            }
        }
    })?;
    nmt_engine::mem::put_val(true, acc);
    Ok(KernelRun { c, stats })
}

/// B-stationary over offline-tiled **DCSR** (stored pre-tiled in DRAM).
pub fn bstat_tiled_dcsr_offline(
    gpu: &mut Gpu,
    tiled: &TiledDcsr,
    b: &DenseMatrix,
) -> Result<KernelRun, SimError> {
    let shape = tiled.shape();
    check_dims(shape, b, tiled.tile_width())?;
    let n = shape.nrows;
    let k = b.ncols();
    let tile_w = tiled.tile_width();
    let a_dev = TiledDcsrDevice::upload(gpu, tiled);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let tiles_per_strip = tiled.tiles_per_strip();
    // One block per strip: B tile resident in shared memory across all of
    // the strip's tiles.
    let num_blocks = tiled.num_strips();
    let shared = tile_w * k * WORD as usize;
    let mut acc = nmt_engine::mem::take_val(true, k);
    let stats = gpu.launch(shared, num_blocks, |ctx| {
        let s = ctx.block_id;
        let first_width = tiled.strips()[s].first().map_or(tile_w, |t| t.width);
        let b_rows = first_width.min(b.nrows().saturating_sub(s * tile_w));
        load_b_tile(ctx, &b_dev, s * tile_w, b_rows, k);
        for t in 0..tiles_per_strip {
            let tile = &tiled.strips()[s][t];
            // Tile directory entry + the tile's packed bytes.
            let (off, len) = a_dev.offsets[s][t];
            let dir_bytes = 8.min(a_dev.data.len);
            ctx.ld_global(
                &a_dev.data,
                off.min(a_dev.data.len - dir_bytes),
                dir_bytes,
                false,
            );
            if len > 0 {
                ctx.ld_global(&a_dev.data, off, len, false);
            }
            for i in 0..tile.nnz_rows() {
                let (lo, hi) = (tile.rowptr[i] as usize, tile.rowptr[i + 1] as usize);
                ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
                let global_row = (tile.row_start + tile.rowidx[i]) as usize;
                process_tile_row(
                    ctx,
                    &mut c,
                    &c_dev,
                    b,
                    global_row,
                    &tile.colidx[lo..hi],
                    tile.col_start,
                    &tile.values[lo..hi],
                    k,
                    &mut acc,
                );
            }
        }
    })?;
    nmt_engine::mem::put_val(true, acc);
    Ok(KernelRun { c, stats })
}

/// Order in which the grid of B tiles is traversed (§3.1.3).
///
/// B tiles form a grid: row index = vertical strip `s` (a block of B's
/// rows), column index = output-column tile `kc`. The traversal order
/// decides C's reuse distance: column-major (all strips for one `kc`
/// before the next) keeps one column slice of C hot in the LLC "by
/// writing back to the same tiles until all partial sums are
/// accumulated"; row-major touches the entire C once per strip, which
/// "is rather expensive".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// For each strip, sweep every output-column tile (C thrashes).
    RowMajor,
    /// For each output-column tile, sweep every strip (C slice stays hot).
    ColumnMajor,
}

/// B-stationary over offline-tiled DCSR with an explicit B-tile traversal
/// order and `K` split into `tile_w`-wide output-column tiles — the
/// experiment kernel behind §3.1.3's row- vs column-major comparison.
pub fn bstat_tiled_dcsr_traversal(
    gpu: &mut Gpu,
    tiled: &TiledDcsr,
    b: &DenseMatrix,
    traversal: Traversal,
) -> Result<KernelRun, SimError> {
    let shape = tiled.shape();
    check_dims(shape, b, tiled.tile_width())?;
    let n = shape.nrows;
    let k = b.ncols();
    let tile_w = tiled.tile_width();
    let kc_tiles = k.div_ceil(tile_w).max(1);
    let a_dev = TiledDcsrDevice::upload(gpu, tiled);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let nstrips = tiled.num_strips();
    let tiles_per_strip = tiled.tiles_per_strip();
    let num_blocks = nstrips * kc_tiles;
    let shared = tile_w * tile_w * WORD as usize;
    let mut acc = nmt_engine::mem::take_val(true, tile_w);
    let stats = gpu.launch(shared, num_blocks, |ctx| {
        // Block order implements the traversal.
        let (s, kc) = match traversal {
            Traversal::RowMajor => (ctx.block_id / kc_tiles, ctx.block_id % kc_tiles),
            Traversal::ColumnMajor => (ctx.block_id % nstrips, ctx.block_id / nstrips),
        };
        let warp = ctx.warp_size();
        let k_lo = kc * tile_w;
        let k_hi = (k_lo + tile_w).min(k);
        let kw = k_hi - k_lo;
        // Load the (s, kc) tile of B into shared memory.
        let first_width = tiled.strips()[s].first().map_or(tile_w, |t| t.width);
        let b_rows = first_width.min(b.nrows().saturating_sub(s * tile_w));
        for i in 0..b_rows {
            let (off, bytes) = b_dev.row_segment((s * tile_w + i) as u64, k_lo as u64, kw as u64);
            ctx.ld_global(&b_dev.buf, off, bytes, false);
            ctx.shared_op(bytes, warp.min(kw));
        }
        for t in 0..tiles_per_strip {
            let tile = &tiled.strips()[s][t];
            let (off, len) = a_dev.offsets[s][t];
            let dir_bytes = 8.min(a_dev.data.len);
            ctx.ld_global(
                &a_dev.data,
                off.min(a_dev.data.len - dir_bytes),
                dir_bytes,
                false,
            );
            if len > 0 {
                ctx.ld_global(&a_dev.data, off, len, false);
            }
            for i in 0..tile.nnz_rows() {
                let (lo, hi) = (tile.rowptr[i] as usize, tile.rowptr[i + 1] as usize);
                ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
                let global_row = (tile.row_start + tile.rowidx[i]) as usize;
                acc.clear();
                acc.resize(kw, 0.0);
                for e in lo..hi {
                    let col = (tile.col_start + tile.colidx[e]) as usize;
                    let v = tile.values[e];
                    ctx.warp_instr(InstrClass::Integer, kw.min(warp), 1);
                    let mut x = 0;
                    while x < kw {
                        let chunk = (kw - x).min(warp);
                        ctx.shared_op(chunk as u64 * WORD, chunk);
                        ctx.fma(chunk, 1);
                        let brow = b.row(col);
                        for j in x..x + chunk {
                            acc[j] += v * brow[k_lo + j];
                        }
                        x += chunk;
                    }
                }
                // Atomic update of this row's kc column slice.
                let (off, bytes) = c_dev.row_segment(global_row as u64, k_lo as u64, kw as u64);
                ctx.atomic_add_global(&c_dev.buf, off, bytes);
                let out = c.row_mut(global_row);
                for (j, a) in acc.iter().enumerate() {
                    out[k_lo + j] += a;
                }
            }
        }
    })?;
    nmt_engine::mem::put_val(true, acc);
    Ok(KernelRun { c, stats })
}

/// Result of the online kernel: the run plus the engine activity.
#[derive(Debug, Clone)]
pub struct OnlineRun {
    /// The kernel run (output + GPU-side stats).
    pub run: KernelRun,
    /// Aggregated conversion-engine counters across all strips.
    pub engine: ConversionStats,
}

/// The paper's proposal: B-stationary tiled DCSR **converted online** from
/// CSC by the near-memory engine (`GetDCSRTile`, Figure 11).
///
/// DRAM-side cost is the CSC stream the engine consumes inside the FB
/// partition (accounted as `MatA`); the produced DCSR rows ride the
/// crossbar into the SM's shared memory (accounted as issue cost and
/// [`TrafficClass::Engine`] request traffic, not DRAM).
pub fn bstat_tiled_dcsr_online(
    gpu: &mut Gpu,
    csc: &Csc,
    b: &DenseMatrix,
    tile_w: usize,
    tile_h: usize,
) -> Result<OnlineRun, SimError> {
    bstat_tiled_dcsr_online_obs(gpu, csc, b, tile_w, tile_h, &ObsContext::disabled())
}

/// [`bstat_tiled_dcsr_online`] with an observability context threaded
/// through: the conversion pre-run and the kernel launch are wrapped in
/// spans (`engine.convert` with one child per strip, `kernels.launch`),
/// per-strip FLOP/element/stream-byte histograms land in the metric
/// registry, and — when the context is enabled — each strip additionally
/// runs the cycle-level prefetch pipeline so
/// `engine.pipeline.prefetch_hit_rate` reflects this matrix.
pub fn bstat_tiled_dcsr_online_obs(
    gpu: &mut Gpu,
    csc: &Csc,
    b: &DenseMatrix,
    tile_w: usize,
    tile_h: usize,
    obs: &ObsContext,
) -> Result<OnlineRun, SimError> {
    let shape = csc.shape();
    check_dims(shape, b, tile_w)?;
    let n = shape.nrows;
    let k = b.ncols();
    let a_dev = CscDevice::upload(gpu, csc);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    // Pre-run the functional converters: one engine per FB partition,
    // strips sharded rayon-parallel across the farm (§6.1). The farm's
    // reduction is partition-index-ordered, so `engine` and every obs
    // counter below are byte-identical at any thread count.
    let nstrips = nmt_formats::strip_count(shape.ncols, tile_w);
    let tiles_per_strip = nmt_formats::tile_count(n, tile_h);
    let farm_cfg =
        FarmConfig::for_partitions(gpu.config().num_partitions).with_fault(gpu.fault_plan());
    let farm = convert_matrix_farm_obs(csc, tile_w, tile_h, farm_cfg, obs).map_err(|e| match e {
        nmt_engine::FarmError::Fault { site, key, detail } => {
            SimError::InjectedFault { site, key, detail }
        }
        other => SimError::BadConfig(other.to_string()),
    })?;
    let engine = farm.stats;
    {
        let mut convert_span = obs.span("engine.convert");
        // The discrete prefetch-pipeline model is priced per strip only
        // when someone is watching; it does not change the run. It is pure
        // per strip, so it runs in the same parallel fashion as the farm
        // and publishes serially below in strip order.
        let pipeline_runs: Vec<PipelineResult> = if obs.is_enabled() {
            use rayon::prelude::*;
            let pipe_cfg = PipelineConfig::paper_fp32(tile_w.clamp(1, 64));
            (0..nstrips)
                .into_par_iter()
                .map(|s| simulate_strip(csc, s, &pipe_cfg))
                .collect()
        } else {
            // nmt-lint: allow(hot-alloc) — cold branch, empty Vec never allocates
            Vec::new()
        };
        // Record spans and histograms serially, strips ascending: span
        // parentage and histogram contents stay identical to a serial run.
        for (s, st) in farm.per_strip.iter().enumerate() {
            let mut strip_span = obs.span("engine.convert.strip");
            strip_span.counter("strip", s as f64);
            strip_span.counter("elements", st.elements as f64);
            strip_span.counter("output_bytes", st.output_bytes as f64);
            obs.flight
                .record(nmt_obs::EventSite::KernelStrip, 0, s as u64, st.elements);
            let m = &obs.metrics;
            m.histogram_record("kernels.bstat_online.strip_elements", st.elements);
            m.histogram_record("kernels.bstat_online.strip_flops", 2 * k as u64 * st.elements);
            m.histogram_record("kernels.bstat_online.strip_stream_bytes", st.output_bytes);
            if let Some(pipe) = pipeline_runs.get(s) {
                publish_pipeline(obs, pipe);
            }
        }
        convert_span.counter("strips", nstrips as f64);
    }
    publish_conversion(obs, &engine);
    publish_farm(obs, &farm);
    let tiles = farm.strips;

    let mut c = DenseMatrix::zeros(n, k);
    // One block per strip, exactly the device loop of Figure 11: the block
    // initializes col_frontier, loads its B tile once, then issues one
    // GetDCSRTile per DCSR_HEIGHT rows.
    let num_blocks = nstrips;
    let shared = tile_w * k * WORD as usize;
    let launch_span = obs.span("kernels.launch");
    obs.flight
        .record(nmt_obs::EventSite::KernelLaunch, 0, nstrips as u64, k as u64);
    let mut acc = nmt_engine::mem::take_val(farm_cfg.pool, k);
    let stats = gpu.launch(shared, num_blocks, |ctx| {
        let s = ctx.block_id;
        let first_width = tiles[s].first().map_or(tile_w, |t| t.width);
        let b_rows = first_width.min(b.nrows().saturating_sub(s * tile_w));
        load_b_tile(ctx, &b_dev, s * tile_w, b_rows, k);
        // Engine loads boundary/frontier pointers from col_ptr once per
        // strip (Figure 14 ❶).
        ctx.ld_global(
            &a_dev.colptr,
            (s * tile_w) as u64 * WORD,
            (first_width as u64 + 1) * WORD,
            false,
        );
        let mut consumed_before = 0u64;
        #[allow(clippy::needless_range_loop)] // t also names the tile for requests
        for t in 0..tiles_per_strip {
            let tile = &tiles[s][t];
            // GetDCSRTile request: much like a warp vector store (Fig. 11).
            ctx.warp_instr(InstrClass::Memory, ctx.warp_size(), 1);
            // Engine streams the tile's CSC elements from DRAM inside the
            // FB partition: rowidx + value per element. The strip's
            // elements are contiguous; this tile consumes the next `nnz`
            // of them (sequential frontier advance).
            if tile.nnz() > 0 {
                let first = csc.colptr()[s * tile_w] as u64;
                let lo = (first + consumed_before) * WORD;
                let bytes = tile.nnz() as u64 * WORD;
                ctx.ld_global(&a_dev.rowidx, lo, bytes, false);
                ctx.ld_global(&a_dev.values, lo, bytes, false);
                consumed_before += tile.nnz() as u64;
            }
            // Converted rows arrive over the Xbar into shared memory: they
            // consume crossbar bandwidth and issue slots, but no DRAM
            // bandwidth — the engine's whole point.
            let stream_bytes = (tile.metadata_bytes() + tile.data_bytes()) as u64;
            ctx.xbar_stream(stream_bytes);
            for i in 0..tile.nnz_rows() {
                let (lo, hi) = (tile.rowptr[i] as usize, tile.rowptr[i + 1] as usize);
                ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
                let global_row = (tile.row_start + tile.rowidx[i]) as usize;
                process_tile_row(
                    ctx,
                    &mut c,
                    &c_dev,
                    b,
                    global_row,
                    &tile.colidx[lo..hi],
                    tile.col_start,
                    &tile.values[lo..hi],
                    k,
                    &mut acc,
                );
            }
        }
    })?;
    nmt_engine::mem::put_val(farm_cfg.pool, acc);
    // The freshly-minted tiles have been consumed; hand their buffers back
    // so the next online conversion of a similar matrix allocates nothing.
    if farm_cfg.pool {
        nmt_engine::mem::recycle_strips(tiles);
    }
    drop(launch_span);
    Ok(OnlineRun {
        run: KernelRun { c, stats },
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use nmt_formats::Csr;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
    use nmt_sim::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    fn matrix(n: usize, density: f64, seed: u64) -> Csr {
        generators::generate(&MatrixDesc::new("t", n, GenKind::Uniform { density }, seed))
    }

    #[test]
    fn tiled_csr_matches_reference() {
        let a = matrix(128, 0.02, 1);
        let tiled = TiledCsr::from_csr(&a, 16).unwrap();
        let b = random_dense(128, 16, 2);
        let run = bstat_tiled_csr(&mut gpu(), &tiled, &b, 16).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
        assert!(run.stats.atomics > 0, "B-stationary must use atomics");
    }

    #[test]
    fn tiled_dcsr_offline_matches_reference() {
        let a = matrix(128, 0.02, 3);
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let b = random_dense(128, 16, 4);
        let run = bstat_tiled_dcsr_offline(&mut gpu(), &tiled, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn online_matches_reference_and_offline() {
        let a = matrix(128, 0.02, 5);
        let csc = a.to_csc();
        let b = random_dense(128, 16, 6);
        let online = bstat_tiled_dcsr_online(&mut gpu(), &csc, &b, 16, 16).unwrap();
        assert!(online.run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let offline = bstat_tiled_dcsr_offline(&mut gpu(), &tiled, &b).unwrap();
        assert!(online.run.c.approx_eq(&offline.c, 1e-5));
        assert_eq!(online.engine.elements as usize, a.nnz());
    }

    #[test]
    fn dcsr_reduces_inactive_slots_vs_tiled_csr() {
        // Figure 7: tiled DCSR cuts inactive thread executions ~90%.
        let a = matrix(256, 0.002, 7);
        let b = random_dense(256, 16, 8);
        let tcsr = TiledCsr::from_csr(&a, 16).unwrap();
        let tdcsr = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let csr_run = bstat_tiled_csr(&mut gpu(), &tcsr, &b, 16).unwrap();
        let dcsr_run = bstat_tiled_dcsr_offline(&mut gpu(), &tdcsr, &b).unwrap();
        let csr_inact = csr_run.stats.warp_exec.inactive_fraction();
        let dcsr_inact = dcsr_run.stats.warp_exec.inactive_fraction();
        assert!(
            dcsr_inact < csr_inact,
            "tiled DCSR should reduce inactive fraction: {dcsr_inact} vs {csr_inact}"
        );
    }

    #[test]
    fn online_reads_less_dram_metadata_than_offline() {
        // The whole point: online pays CSC-sized A traffic, offline pays
        // the tiled-DCSR footprint (Figure 9's overhead).
        let a = matrix(256, 0.002, 9);
        let csc = a.to_csc();
        let b = random_dense(256, 16, 10);
        let online = bstat_tiled_dcsr_online(&mut gpu(), &csc, &b, 16, 16).unwrap();
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let offline = bstat_tiled_dcsr_offline(&mut gpu(), &tiled, &b).unwrap();
        let online_a = online.run.stats.requested_traffic.get(TrafficClass::MatA);
        let offline_a = offline.stats.requested_traffic.get(TrafficClass::MatA);
        assert!(
            online_a < offline_a,
            "online A traffic {online_a} should undercut offline {offline_a}"
        );
    }

    #[test]
    fn traversal_kernel_matches_reference_both_orders() {
        let a = matrix(128, 0.02, 21);
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let b = random_dense(128, 64, 22); // 4 output-column tiles
        let reference = host::spmm_csr(&a, &b);
        for order in [Traversal::RowMajor, Traversal::ColumnMajor] {
            let run = bstat_tiled_dcsr_traversal(&mut gpu(), &tiled, &b, order).unwrap();
            assert!(run.c.approx_eq(&reference, 1e-4), "{order:?} diverged");
        }
    }

    #[test]
    fn column_major_traversal_has_better_c_locality() {
        // §3.1.3: column-major keeps a C column slice hot across strips;
        // row-major cycles the whole C per strip. With C larger than the
        // test L2, column-major must see fewer C DRAM bytes.
        let a = matrix(256, 0.03, 23);
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let b = random_dense(256, 64, 24);
        let row = bstat_tiled_dcsr_traversal(&mut gpu(), &tiled, &b, Traversal::RowMajor).unwrap();
        let col =
            bstat_tiled_dcsr_traversal(&mut gpu(), &tiled, &b, Traversal::ColumnMajor).unwrap();
        assert!(col.c.approx_eq(&row.c, 1e-4));
        let row_c = row.stats.dram_traffic.get(TrafficClass::MatC);
        let col_c = col.stats.dram_traffic.get(TrafficClass::MatC);
        assert!(
            col_c <= row_c,
            "column-major C traffic {col_c} should not exceed row-major {row_c}"
        );
    }

    #[test]
    fn empty_matrix_runs() {
        let a = Csr::new(32, 32, vec![0; 33], vec![], vec![]).unwrap();
        let b = random_dense(32, 8, 1);
        let online = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, 16, 16).unwrap();
        assert!(online.run.c.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(online.engine.elements, 0);
    }

    #[test]
    fn online_obs_records_spans_and_strip_histograms() {
        let a = matrix(128, 0.02, 11);
        let csc = a.to_csc();
        let b = random_dense(128, 16, 12);
        let obs = ObsContext::enabled();
        let online = bstat_tiled_dcsr_online_obs(&mut gpu(), &csc, &b, 16, 16, &obs).unwrap();
        assert!(online.run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
        // lane_slots flows through the merge, so occupancy is computable.
        assert!(online.engine.lane_slots > 0);
        assert!(online.engine.comparator_occupancy() > 0.0);

        let spans = obs.recorder.snapshot();
        let convert = spans
            .iter()
            .find(|s| s.name == "engine.convert")
            .expect("engine.convert span");
        let nstrips = 128usize.div_ceil(16);
        let strips: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "engine.convert.strip")
            .collect();
        assert_eq!(strips.len(), nstrips);
        assert!(strips.iter().all(|s| s.parent == Some(convert.id)));
        assert!(spans.iter().any(|s| s.name == "kernels.launch"));

        let snap = obs.metrics.snapshot();
        let h = &snap.histograms["kernels.bstat_online.strip_elements"];
        assert_eq!(h.count, nstrips as u64);
        assert_eq!(h.sum, a.nnz() as u64);
        let flops = &snap.histograms["kernels.bstat_online.strip_flops"];
        assert_eq!(flops.sum, 2 * 16 * a.nnz() as u64);
        // The enabled context priced the prefetch pipeline per strip.
        assert!(obs.metrics.counter("engine.pipeline.cycles") > 0);
        let rate = obs
            .metrics
            .gauge("engine.pipeline.prefetch_hit_rate")
            .unwrap();
        assert!((0.0..=1.0).contains(&rate));
        // ...and the conversion bridge published whole-matrix totals.
        assert_eq!(
            obs.metrics.counter("engine.convert.elements"),
            a.nnz() as u64
        );
    }

    #[test]
    fn online_obs_disabled_context_skips_spans_but_keeps_results() {
        let a = matrix(64, 0.05, 13);
        let csc = a.to_csc();
        let b = random_dense(64, 8, 14);
        let with_obs =
            bstat_tiled_dcsr_online_obs(&mut gpu(), &csc, &b, 16, 16, &ObsContext::disabled())
                .unwrap();
        let plain = bstat_tiled_dcsr_online(&mut gpu(), &csc, &b, 16, 16).unwrap();
        assert!(with_obs.run.c.approx_eq(&plain.run.c, 1e-6));
        assert_eq!(with_obs.engine.elements, plain.engine.elements);
        assert_eq!(with_obs.engine.lane_slots, plain.engine.lane_slots);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::KernelRun;
    use nmt_formats::Csr;
    use nmt_matgen::random_dense;
    use nmt_sim::GpuConfig;

    /// Review regression: the offline/traversal kernels' tile-directory
    /// read used to underflow on an all-empty matrix.
    #[test]
    fn offline_kernels_handle_empty_matrix() {
        let a = Csr::new(32, 32, vec![0; 33], vec![], vec![]).unwrap();
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        let b = random_dense(32, 8, 1);
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let run: KernelRun = bstat_tiled_dcsr_offline(&mut gpu, &tiled, &b).unwrap();
        assert!(run.c.as_slice().iter().all(|&v| v == 0.0));
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let run = bstat_tiled_dcsr_traversal(&mut gpu, &tiled, &b, Traversal::ColumnMajor).unwrap();
        assert!(run.c.as_slice().iter().all(|&v| v == 0.0));
    }
}
