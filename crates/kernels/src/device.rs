//! Device-memory images of the host formats.
//!
//! The simulator models addresses, not contents, so "uploading" a matrix
//! allocates appropriately sized, appropriately classed buffers whose
//! offsets the kernels use for traffic accounting while they compute the
//! result from the host-side structures.

use nmt_formats::{Csc, Csr, Dcsr, DenseMatrix, SparseMatrix, TiledDcsr};
use nmt_sim::{Buffer, Gpu, TrafficClass};

/// Bytes per stored index/value (fp32 + u32).
pub const WORD: u64 = 4;

/// Device image of a CSR matrix: `rowptr`, `colidx`, `values`.
#[derive(Debug, Clone, Copy)]
pub struct CsrDevice {
    /// Row-pointer array (`n + 1` words).
    pub rowptr: Buffer,
    /// Column-index array (`nnz` words).
    pub colidx: Buffer,
    /// Value array (`nnz` words).
    pub values: Buffer,
}

impl CsrDevice {
    /// Allocate buffers for `csr` under [`TrafficClass::MatA`].
    pub fn upload(gpu: &mut Gpu, csr: &Csr) -> Self {
        let n = csr.shape().nrows as u64;
        let nnz = csr.nnz() as u64;
        Self {
            rowptr: gpu.alloc((n + 1) * WORD, TrafficClass::MatA),
            colidx: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
            values: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
        }
    }
}

/// Device image of an untiled DCSR matrix.
#[derive(Debug, Clone, Copy)]
pub struct DcsrDevice {
    /// Non-empty-row index array.
    pub rowidx: Buffer,
    /// Row-pointer array over densified rows.
    pub rowptr: Buffer,
    /// Column-index array.
    pub colidx: Buffer,
    /// Value array.
    pub values: Buffer,
}

impl DcsrDevice {
    /// Allocate buffers for `dcsr` under [`TrafficClass::MatA`].
    pub fn upload(gpu: &mut Gpu, dcsr: &Dcsr) -> Self {
        let rows = dcsr.num_dense_rows() as u64;
        let nnz = dcsr.nnz() as u64;
        Self {
            rowidx: gpu.alloc(rows.max(1) * WORD, TrafficClass::MatA),
            rowptr: gpu.alloc((rows + 1) * WORD, TrafficClass::MatA),
            colidx: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
            values: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
        }
    }
}

/// Device image of a CSC matrix (the engine's input).
#[derive(Debug, Clone, Copy)]
pub struct CscDevice {
    /// Column-pointer array (`ncols + 1` words).
    pub colptr: Buffer,
    /// Row-index array (`nnz` words).
    pub rowidx: Buffer,
    /// Value array (`nnz` words).
    pub values: Buffer,
}

impl CscDevice {
    /// Allocate buffers for `csc` under [`TrafficClass::MatA`].
    pub fn upload(gpu: &mut Gpu, csc: &Csc) -> Self {
        let ncols = csc.shape().ncols as u64;
        let nnz = csc.nnz() as u64;
        Self {
            colptr: gpu.alloc((ncols + 1) * WORD, TrafficClass::MatA),
            rowidx: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
            values: gpu.alloc(nnz.max(1) * WORD, TrafficClass::MatA),
        }
    }

    /// Byte range of the element arrays for columns `[c0, c1)`, relative
    /// to `rowidx`/`values`: CSC keeps a strip's elements contiguous —
    /// the property that makes online strip extraction cheap (§4.1).
    pub fn strip_elem_range(csc: &Csc, c0: usize, c1: usize) -> (u64, u64) {
        let lo = csc.colptr()[c0] as u64 * WORD;
        let hi = csc.colptr()[c1] as u64 * WORD;
        (lo, hi - lo)
    }
}

/// Device image of an offline-tiled DCSR matrix: one contiguous buffer with
/// per-tile byte offsets (strip-major).
#[derive(Debug, Clone)]
pub struct TiledDcsrDevice {
    /// The packed tile data.
    pub data: Buffer,
    /// `offsets[s][t]` = (byte offset, byte length) of tile `t` of strip `s`.
    pub offsets: Vec<Vec<(u64, u64)>>,
}

impl TiledDcsrDevice {
    /// Allocate and lay out `tiled` under [`TrafficClass::MatA`].
    pub fn upload(gpu: &mut Gpu, tiled: &TiledDcsr) -> Self {
        let mut offsets = Vec::with_capacity(tiled.num_strips());
        let mut cursor = 0u64;
        for strip in tiled.strips() {
            let mut row = Vec::with_capacity(strip.len());
            for tile in strip {
                let bytes = (tile.metadata_bytes() + tile.data_bytes()) as u64;
                row.push((cursor, bytes));
                cursor += bytes;
            }
            offsets.push(row);
        }
        Self {
            data: gpu.alloc(cursor.max(1), TrafficClass::MatA),
            offsets,
        }
    }
}

/// Device image of a dense matrix (row-major).
#[derive(Debug, Clone, Copy)]
pub struct DenseDevice {
    /// The row-major payload.
    pub buf: Buffer,
    /// Row length in elements.
    pub ncols: u64,
}

impl DenseDevice {
    /// Allocate a dense matrix under the given class (B or C).
    pub fn upload(gpu: &mut Gpu, m: &DenseMatrix, class: TrafficClass) -> Self {
        Self {
            buf: gpu.alloc((m.nrows() * m.ncols()) as u64 * WORD, class),
            ncols: m.ncols() as u64,
        }
    }

    /// Byte offset of element `(row, col)`.
    #[inline]
    pub fn offset(&self, row: u64, col: u64) -> u64 {
        (row * self.ncols + col) * WORD
    }

    /// Byte offset and length of the row segment `(row, col..col+len)`.
    #[inline]
    pub fn row_segment(&self, row: u64, col: u64, len: u64) -> (u64, u64) {
        (self.offset(row, col), len * WORD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;
    use nmt_sim::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    fn sample() -> Csr {
        let coo =
            Coo::from_triplets(8, 8, &[0, 3, 5, 7], &[1, 4, 2, 7], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn csr_upload_sizes() {
        let mut g = gpu();
        let csr = sample();
        let d = CsrDevice::upload(&mut g, &csr);
        assert_eq!(d.rowptr.len, 9 * 4);
        assert_eq!(d.colidx.len, 4 * 4);
        assert_eq!(d.values.len, 4 * 4);
        assert_eq!(d.rowptr.class, TrafficClass::MatA);
    }

    #[test]
    fn csc_strip_ranges_are_contiguous() {
        let csc = sample().to_csc();
        let (lo0, len0) = CscDevice::strip_elem_range(&csc, 0, 4);
        let (lo1, len1) = CscDevice::strip_elem_range(&csc, 4, 8);
        assert_eq!(lo0, 0);
        assert_eq!(lo0 + len0, lo1);
        assert_eq!((len0 + len1) / 4, 4); // all nnz covered
    }

    #[test]
    fn tiled_upload_offsets_are_disjoint_and_ordered() {
        let mut g = gpu();
        let tiled = TiledDcsr::from_csr(&sample(), 4, 4).unwrap();
        let d = TiledDcsrDevice::upload(&mut g, &tiled);
        let mut cursor = 0;
        let mut total = 0;
        for strip in &d.offsets {
            for &(off, len) in strip {
                assert_eq!(off, cursor);
                cursor += len;
                total += len;
            }
        }
        use nmt_formats::StorageSize;
        assert_eq!(total as usize, tiled.storage_bytes());
        assert!(d.data.len >= total.max(1));
    }

    #[test]
    fn dense_offsets() {
        let mut g = gpu();
        let m = DenseMatrix::zeros(4, 8);
        let d = DenseDevice::upload(&mut g, &m, TrafficClass::MatB);
        assert_eq!(d.offset(0, 0), 0);
        assert_eq!(d.offset(1, 0), 32);
        assert_eq!(d.offset(2, 3), (2 * 8 + 3) * 4);
        assert_eq!(d.row_segment(1, 2, 4), (40, 16));
        assert_eq!(d.buf.len, 4 * 8 * 4);
    }

    #[test]
    fn empty_matrix_allocates_nonzero_buffers() {
        let mut g = gpu();
        let csr = Csr::new(4, 4, vec![0; 5], vec![], vec![]).unwrap();
        let d = CsrDevice::upload(&mut g, &csr);
        assert!(
            d.colidx.len > 0,
            "zero-length buffers would break alloc math"
        );
    }
}
