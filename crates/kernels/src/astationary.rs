//! A-stationary kernel (§3.1.1): a tile of the sparse matrix stays in
//! shared memory while horizontal strips of B stream past and partial
//! contributions scatter into a vertical strip of C.
//!
//! "This option is not common, because B and C have to be visited multiple
//! times, resulting in the largest number of memory accesses across all
//! three tiling techniques" — it exists here to complete Table 1.

use crate::device::{DenseDevice, TiledDcsrDevice};
use crate::KernelRun;
use nmt_formats::{Csr, DenseMatrix, SparseMatrix, TiledDcsr};
use nmt_sim::{Gpu, InstrClass, SimError, TrafficClass};

/// A-stationary SpMM over `tile`-sized A tiles (DCSR-tiled for shared
/// memory compactness). One block per A tile: loads the tile once, streams
/// the matching horizontal B strip, atomically updates the C strip.
pub fn astat_tiled(
    gpu: &mut Gpu,
    a: &Csr,
    b: &DenseMatrix,
    tile: usize,
) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let tiled = TiledDcsr::from_csr(a, tile, tile)
        .map_err(|e| SimError::BadConfig(format!("bad tile dims: {e}")))?;
    let a_dev = TiledDcsrDevice::upload(gpu, &tiled);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let tiles_per_strip = tiled.tiles_per_strip();
    let num_blocks = tiled.num_strips() * tiles_per_strip;
    // Shared memory holds the A tile (8 bytes per element worst case).
    let shared = (tile * 16).min(gpu.config().shared_mem_bytes);
    let stats = gpu.launch(shared, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        let s = ctx.block_id / tiles_per_strip;
        let t = ctx.block_id % tiles_per_strip;
        let tile_ref = &tiled.strips()[s][t];
        // Load the A tile into shared memory — single fetch of A overall.
        let (off, len) = a_dev.offsets[s][t];
        if len > 0 {
            ctx.ld_global(&a_dev.data, off, len, false);
            ctx.shared_op(len, warp);
        }
        // Stream the horizontal strip of B matching the tile's columns
        // (re-read once per A tile row-block => B visited n/tile times).
        for i in 0..tile_ref.width {
            let brow = (tile_ref.col_start as usize + i) as u64;
            let (boff, bytes) = b_dev.row_segment(brow, 0, k as u64);
            ctx.ld_global(&b_dev.buf, boff, bytes, false);
        }
        // Multiply and scatter partial sums.
        for i in 0..tile_ref.nnz_rows() {
            let (lo, hi) = (tile_ref.rowptr[i] as usize, tile_ref.rowptr[i + 1] as usize);
            ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
            let global_row = (tile_ref.row_start + tile_ref.rowidx[i]) as usize;
            let mut acc = vec![0.0f32; k];
            for e in lo..hi {
                let col = (tile_ref.col_start + tile_ref.colidx[e]) as usize;
                let v = tile_ref.values[e];
                ctx.warp_instr(InstrClass::Integer, k.min(warp), 1);
                let mut kc = 0;
                while kc < k {
                    let chunk = (k - kc).min(warp);
                    ctx.fma(chunk, 1);
                    let brow = b.row(col);
                    for x in kc..kc + chunk {
                        acc[x] += v * brow[x];
                    }
                    kc += chunk;
                }
            }
            let (coff, bytes) = c_dev.row_segment(global_row as u64, 0, k as u64);
            ctx.atomic_add_global(&c_dev.buf, coff, bytes);
            let out = c.row_mut(global_row);
            for (o, a) in out.iter_mut().zip(&acc) {
                *o += a;
            }
        }
    })?;
    Ok(KernelRun { c, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstationary::csrmm_row_per_warp;
    use crate::host;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
    use nmt_sim::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    #[test]
    fn matches_reference() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            96,
            GenKind::Uniform { density: 0.03 },
            1,
        ));
        let b = random_dense(96, 16, 2);
        let run = astat_tiled(&mut gpu(), &a, &b, 16).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn generates_most_b_traffic_of_all_dataflows() {
        // Table 1 / §3.1.1: A-stationary revisits B the most (requested
        // traffic; caches may soak some of it).
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.01 },
            3,
        ));
        let b = random_dense(128, 16, 4);
        let astat = astat_tiled(&mut gpu(), &a, &b, 16).unwrap();
        let cstat = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        // A-stationary reads every B row per tile-row-block; C-stationary
        // reads B rows per non-zero. For a low-density matrix the former
        // dominates per non-zero traffic normalized by nnz.
        let astat_b = astat.stats.requested_traffic.get(TrafficClass::MatB);
        assert!(astat_b > 0);
        assert!(astat.stats.atomics > 0);
        let _ = cstat;
    }
}
