//! Host (CPU) reference SpMM implementations — the correctness oracles.
//!
//! Every simulated GPU kernel is verified against these. The CSR reference
//! is rayon-parallel over output rows (C-stationary on the CPU: each worker
//! owns disjoint rows of C, so no synchronization is needed — the same
//! property that makes GPU C-stationary atomic-free).

use nmt_formats::{Csc, Csr, Dcsr, DenseMatrix, SparseMatrix, TiledDcsr};
use rayon::prelude::*;

/// Dense reference: `C = A_dense × B` (O(n²·k); tests only).
pub fn spmm_dense(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            let v = a.get(i, j);
            if v != 0.0 {
                for k in 0..b.ncols() {
                    c.add(i, k, v * b.get(j, k));
                }
            }
        }
    }
    c
}

/// CSR SpMM (Algorithm 1), parallel over rows.
pub fn spmm_csr(a: &Csr, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.shape().ncols, b.nrows(), "inner dimensions must agree");
    let k = b.ncols();
    let mut c = DenseMatrix::zeros(a.shape().nrows, k);
    let rows: Vec<(usize, &mut [f32])> = c.par_row_chunks_mut(1);
    rows.into_par_iter().for_each(|(r, out)| {
        let (cols, vals) = a.row(r);
        for (&col, &v) in cols.iter().zip(vals) {
            let brow = b.row(col as usize);
            for (o, &bv) in out.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
    });
    c
}

/// CSC SpMM: scatter along columns (sequential; used to validate that CSC
/// carries the same information as CSR).
pub fn spmm_csc(a: &Csc, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.shape().ncols, b.nrows(), "inner dimensions must agree");
    let k = b.ncols();
    let mut c = DenseMatrix::zeros(a.shape().nrows, k);
    for col in 0..a.shape().ncols {
        let (rows, vals) = a.col(col);
        let brow = b.row(col);
        for (&r, &v) in rows.iter().zip(vals) {
            let out = c.row_mut(r as usize);
            for (o, &bv) in out.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
    }
    c
}

/// Untiled DCSR SpMM, parallel over densified rows.
pub fn spmm_dcsr(a: &Dcsr, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.shape().ncols, b.nrows(), "inner dimensions must agree");
    let k = b.ncols();
    let n = a.shape().nrows;
    let results: Vec<(u32, Vec<f32>)> = (0..a.num_dense_rows())
        .into_par_iter()
        .map(|i| {
            let (r, cols, vals) = a.dense_row(i);
            let mut acc = vec![0.0f32; k];
            for (&col, &v) in cols.iter().zip(vals) {
                let brow = b.row(col as usize);
                for (a, &bv) in acc.iter_mut().zip(brow) {
                    *a += v * bv;
                }
            }
            (r, acc)
        })
        .collect();
    let mut c = DenseMatrix::zeros(n, k);
    for (r, acc) in results {
        c.row_mut(r as usize).copy_from_slice(&acc);
    }
    c
}

/// Tiled DCSR SpMM: per strip, accumulate each tile's partial contributions
/// (the host analogue of the B-stationary kernel, without atomics).
pub fn spmm_tiled_dcsr(a: &TiledDcsr, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.shape().ncols, b.nrows(), "inner dimensions must agree");
    let k = b.ncols();
    let mut c = DenseMatrix::zeros(a.shape().nrows, k);
    for (_, _, tile) in a.iter_tiles() {
        for (r, col, v) in tile.iter_global() {
            let brow = b.row(col as usize);
            let out = c.row_mut(r as usize);
            for (o, &bv) in out.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};

    fn sample_csr() -> Csr {
        let coo = Coo::from_triplets(
            4,
            4,
            &[0, 0, 1, 3, 3],
            &[0, 2, 1, 0, 3],
            &[2.0, -1.0, 3.0, 0.5, 1.5],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn csr_matches_dense_reference() {
        let a = sample_csr();
        let b = random_dense(4, 3, 1);
        let got = spmm_csr(&a, &b);
        let want = spmm_dense(&a.to_dense(), &b);
        assert!(got.approx_eq(&want, 1e-5));
    }

    #[test]
    fn all_formats_agree_on_random_matrix() {
        let desc = MatrixDesc::new("t", 96, GenKind::Uniform { density: 0.05 }, 5);
        let a = generators::generate(&desc);
        let b = random_dense(96, 16, 2);
        let reference = spmm_csr(&a, &b);
        assert!(spmm_csc(&a.to_csc(), &b).approx_eq(&reference, 1e-4));
        assert!(spmm_dcsr(&Dcsr::from_csr(&a), &b).approx_eq(&reference, 1e-4));
        let tiled = TiledDcsr::from_csr(&a, 16, 16).unwrap();
        assert!(spmm_tiled_dcsr(&tiled, &b).approx_eq(&reference, 1e-4));
    }

    #[test]
    fn empty_matrix_gives_zero_output() {
        let a = Csr::new(4, 4, vec![0; 5], vec![], vec![]).unwrap();
        let b = random_dense(4, 4, 3);
        let c = spmm_csr(&a, &b);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let d = spmm_dcsr(&Dcsr::from_csr(&a), &b);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matrix_copies_b() {
        let coo = Coo::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0; 3]).unwrap();
        let a = Csr::from_coo(&coo);
        let b = random_dense(3, 5, 7);
        assert!(spmm_csr(&a, &b).approx_eq(&b, 1e-6));
    }

    #[test]
    fn single_vector_case() {
        // K = 1: SpMM degenerates to SpMV.
        let a = sample_csr();
        let b = random_dense(4, 1, 9);
        let got = spmm_csr(&a, &b);
        let want = spmm_dense(&a.to_dense(), &b);
        assert!(got.approx_eq(&want, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = sample_csr();
        let b = random_dense(5, 3, 1);
        let _ = spmm_csr(&a, &b);
    }
}
