//! Loom models for the flight-recorder ring: run with
//! `RUSTFLAGS="--cfg loom" cargo test -p nmt-obs --test loom_recorder`.
//!
//! The recorder's documented contracts under concurrency:
//! * Per-thread rings wrap independently; `len`/`dropped` are exact
//!   sums once writers are joined, on every interleaving.
//! * `snapshot` may race `record` (it locks each thread buffer in
//!   turn) and must always return a content-ordered, prefix-consistent
//!   view — never a torn event, never a deadlock.
#![cfg(loom)]

use loom::thread;
use nmt_obs::{Event, EventSite, FlightRecorder};
use std::sync::Arc;

#[test]
fn ring_wrap_counts_drops_exactly() {
    loom::model(|| {
        let fr = Arc::new(FlightRecorder::with_capacity(1));
        let a = fr.clone();
        let wa = thread::spawn(move || {
            a.record(EventSite::FarmStrip, 0, 1, 0);
            // Capacity 1: this evicts the first event and bumps dropped.
            a.record(EventSite::FarmStrip, 0, 2, 0);
        });
        let b = fr.clone();
        let wb = thread::spawn(move || {
            b.record(EventSite::KernelStrip, 0, 3, 0);
        });
        wa.join().unwrap();
        wb.join().unwrap();
        // Rings are per thread: A wrapped (1 drop), B did not. The
        // totals are schedule-independent.
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.dropped(), 1);
        let snap = fr.snapshot();
        let keys: Vec<_> = snap.iter().map(Event::content_key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot must be content-ordered");
        assert_eq!(
            snap.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![2, 3],
            "the wrapped-away event must be the oldest"
        );
    });
}

#[test]
fn snapshot_racing_record_is_prefix_consistent() {
    loom::model(|| {
        let fr = Arc::new(FlightRecorder::with_capacity(4));
        let w = fr.clone();
        let writer = thread::spawn(move || {
            w.record(EventSite::SweepMatrix, 1, 7, 0);
        });
        // Unjoined writer: the snapshot sees the event or it doesn't,
        // but never a torn/partial state, and never blocks forever.
        let mid = fr.snapshot();
        assert!(mid.len() <= 1);
        if let Some(e) = mid.first() {
            assert_eq!((e.site, e.code, e.a), (EventSite::SweepMatrix, 1, 7));
        }
        writer.join().unwrap();
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.dropped(), 0);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!((snap[0].code, snap[0].a), (1, 7));
    });
}

#[test]
fn dropped_counter_races_writers_without_undercounting() {
    loom::model(|| {
        let fr = Arc::new(FlightRecorder::with_capacity(1));
        let w = fr.clone();
        let writer = thread::spawn(move || {
            w.record(EventSite::FarmStrip, 0, 1, 0);
            w.record(EventSite::FarmStrip, 0, 2, 0);
        });
        // A racing read observes a monotone prefix: 0 or 1 drops.
        assert!(fr.dropped() <= 1);
        writer.join().unwrap();
        assert_eq!(fr.dropped(), 1);
    });
}
