//! Black-box flight recorder and crash diagnostics bundles.
//!
//! Spans and metrics answer "how long / how much" after a run finishes;
//! the flight recorder answers "what was happening right before it died".
//! It is an always-on, fixed-capacity event log: producers (engine farm,
//! kernels, planner fallback, fault injection, the sweep driver) call
//! [`FlightRecorder::record`] with a tiny fixed-size [`Event`], each
//! thread appends to its own private ring buffer (the hot path takes an
//! uncontended per-thread lock — no shared state is touched), and
//! [`FlightRecorder::snapshot`] merges the buffers into a deterministic,
//! content-ordered view.
//!
//! On panic — or on demand, e.g. when a regression gate fires — the
//! active [`DiagnosticsBundle`] target serializes the retained events,
//! the panicking thread's live span stack, a metric snapshot, and the
//! fault identity into `nmt-diag-<pid>-<seq>-<ns>.json`. `nmt-cli doctor`
//! renders the bundle as a human-readable post-mortem
//! ([`DiagnosticsBundle::render_postmortem`]).
//!
//! Determinism contract: event *content* (`site`, `code`, `a`, `b`) for a
//! given seed is identical at any thread count; only `ts_ns` and `tid`
//! are schedule-dependent. [`FlightRecorder::snapshot`] therefore sorts
//! by content, so two runs of the same work agree event-for-event modulo
//! timestamps and thread ids. Timestamps come from an embedded span-layer
//! clock ([`crate::Recorder::now_ns`]) so this module never reads the
//! wall clock directly.

use crate::metrics::MetricsSnapshot;
use crate::span;
use crate::ObsContext;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, PoisonError, Weak};

/// Where in the stack a flight-recorder event was emitted. The numeric
/// code ([`EventSite::stable_code`]) and the kebab-case name are stable
/// identifiers: bundles are read across commits, so never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventSite {
    /// Sweep driver: one matrix's audit. `a` = suite ordinal;
    /// `code` 0 = started, 1 = finished, 2 = errored.
    SweepMatrix,
    /// Planner phase boundary. `code` = phase ordinal
    /// (0 plan, 1 baseline, 2 chosen); `a` = matrix rows, `b` = nnz.
    PlannerPhase,
    /// Planner degraded-mode fallback to untiled C-stationary.
    /// `code` = fault-site code ([`EventSite::from_fault_code`]),
    /// `a` = fault key (strip / partition / access ordinal).
    PlannerFallback,
    /// Engine farm strip conversion. `a` = strip index;
    /// `code` 0 = converted, 1 = retried, 2 = escalated.
    FarmStrip,
    /// Engine farm deterministic reduction. `a` = strip count,
    /// `b` = surviving partition count.
    FarmReduce,
    /// Online B-stationary kernel, one strip. `a` = strip index,
    /// `b` = elements produced.
    KernelStrip,
    /// Kernel launch over the converted operand. `a` = strip count,
    /// `b` = dense column count `k`.
    KernelLaunch,
    /// Injected fault: strip conversion scramble. `a` = strip index;
    /// `code` 1 = will retry, 2 = escalated after retry.
    FaultConvertStrip,
    /// Injected fault: tile-metadata corruption (caught by `validate()`).
    /// `a` = strip index.
    FaultMetadataCorruption,
    /// Injected fault: a partition dropped from the farm. `a` = partition.
    FaultPartitionDropout,
    /// Injected fault: prefetch billed as a miss. `a` = access ordinal.
    FaultPrefetchOverflow,
    /// Injected fault: DRAM latency spike. `a` = access ordinal.
    FaultDramLatencySpike,
    /// Serve broker admission verdict for one request. `a` = request id;
    /// `code` 0 = admitted, 1 = rejected (queue full), 2 = rejected
    /// (malformed); `b` = queue depth at the verdict.
    ServeAdmission,
    /// Serve plan-cache resolution. `a` = request id;
    /// `code` 0 = hit, 1 = computed (miss leader), 2 = waited on an
    /// in-flight compute, 3 = evicted an entry; `b` = resident bytes.
    ServePlanCache,
    /// Serve response completion. `a` = request id, `b` = simulated
    /// kernel ns; `code` 0 = cold plan, 1 = cached plan.
    ServeResponse,
}

impl EventSite {
    /// Every site, in stable-code order (handy for tests and docs).
    pub const ALL: [EventSite; 15] = [
        EventSite::SweepMatrix,
        EventSite::PlannerPhase,
        EventSite::PlannerFallback,
        EventSite::FarmStrip,
        EventSite::FarmReduce,
        EventSite::KernelStrip,
        EventSite::KernelLaunch,
        EventSite::FaultConvertStrip,
        EventSite::FaultMetadataCorruption,
        EventSite::FaultPartitionDropout,
        EventSite::FaultPrefetchOverflow,
        EventSite::FaultDramLatencySpike,
        EventSite::ServeAdmission,
        EventSite::ServePlanCache,
        EventSite::ServeResponse,
    ];

    /// Stable numeric identity used as the primary merge-sort key.
    pub fn stable_code(self) -> u32 {
        match self {
            EventSite::SweepMatrix => 1,
            EventSite::PlannerPhase => 2,
            EventSite::PlannerFallback => 3,
            EventSite::FarmStrip => 4,
            EventSite::FarmReduce => 5,
            EventSite::KernelStrip => 6,
            EventSite::KernelLaunch => 7,
            EventSite::FaultConvertStrip => 8,
            EventSite::FaultMetadataCorruption => 9,
            EventSite::FaultPartitionDropout => 10,
            EventSite::FaultPrefetchOverflow => 11,
            EventSite::FaultDramLatencySpike => 12,
            EventSite::ServeAdmission => 13,
            EventSite::ServePlanCache => 14,
            EventSite::ServeResponse => 15,
        }
    }

    /// Kebab-case name for post-mortems and ledger error rows.
    pub fn name(self) -> &'static str {
        match self {
            EventSite::SweepMatrix => "sweep-matrix",
            EventSite::PlannerPhase => "planner-phase",
            EventSite::PlannerFallback => "planner-fallback",
            EventSite::FarmStrip => "farm-strip",
            EventSite::FarmReduce => "farm-reduce",
            EventSite::KernelStrip => "kernel-strip",
            EventSite::KernelLaunch => "kernel-launch",
            EventSite::FaultConvertStrip => "fault-convert-strip",
            EventSite::FaultMetadataCorruption => "fault-metadata-corruption",
            EventSite::FaultPartitionDropout => "fault-partition-dropout",
            EventSite::FaultPrefetchOverflow => "fault-prefetch-overflow",
            EventSite::FaultDramLatencySpike => "fault-dram-latency-spike",
            EventSite::ServeAdmission => "serve-admission",
            EventSite::ServePlanCache => "serve-plan-cache",
            EventSite::ServeResponse => "serve-response",
        }
    }

    /// What the `a` operand denotes for this site (post-mortem wording).
    pub fn unit_label(self) -> &'static str {
        match self {
            EventSite::SweepMatrix => "matrix ordinal",
            EventSite::PlannerPhase => "rows",
            EventSite::PlannerFallback => "key",
            EventSite::FarmStrip
            | EventSite::KernelStrip
            | EventSite::FaultConvertStrip
            | EventSite::FaultMetadataCorruption => "strip",
            EventSite::FarmReduce | EventSite::KernelLaunch => "strips",
            EventSite::FaultPartitionDropout => "partition",
            EventSite::FaultPrefetchOverflow | EventSite::FaultDramLatencySpike => "access",
            EventSite::ServeAdmission | EventSite::ServePlanCache | EventSite::ServeResponse => {
                "request"
            }
        }
    }

    /// True for sites that describe an injected fault firing.
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            EventSite::FaultConvertStrip
                | EventSite::FaultMetadataCorruption
                | EventSite::FaultPartitionDropout
                | EventSite::FaultPrefetchOverflow
                | EventSite::FaultDramLatencySpike
        )
    }

    /// Map an `nmt-fault` site code (`FaultSite::code()`, 1–5) to the
    /// flight-recorder site that mirrors it. The two crates do not depend
    /// on each other, so the numeric contract is pinned here and checked
    /// by an integration test against `FaultSite::name()`.
    pub fn from_fault_code(code: u64) -> Option<EventSite> {
        match code {
            1 => Some(EventSite::FaultConvertStrip),
            2 => Some(EventSite::FaultMetadataCorruption),
            3 => Some(EventSite::FaultPartitionDropout),
            4 => Some(EventSite::FaultPrefetchOverflow),
            5 => Some(EventSite::FaultDramLatencySpike),
            _ => None,
        }
    }
}

/// One flight-recorder event: 6 fixed-size fields, cheap to record and
/// stable to serialize. `ts_ns` is nanoseconds since the recorder's
/// creation; `tid` is the span-layer sequential thread id. Both are
/// schedule-dependent — everything else is deterministic per seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Nanoseconds since the owning recorder was created.
    pub ts_ns: u64,
    /// Span-layer sequential thread id of the emitting thread.
    pub tid: u64,
    /// Emitting site.
    pub site: EventSite,
    /// Site-specific sub-code (see [`EventSite`] variant docs).
    pub code: u32,
    /// First operand (strip, partition, ordinal, … per site).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

impl Event {
    /// The deterministic part of the event: everything except `ts_ns`
    /// and `tid`. Snapshot ordering and the 1-vs-N-thread agreement
    /// contract are defined over this key.
    pub fn content_key(&self) -> (u32, u32, u64, u64) {
        (self.site.stable_code(), self.code, self.a, self.b)
    }
}

#[derive(Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

/// One thread's private buffer. Only the owning thread pushes, so the
/// mutex is uncontended on the hot path; `snapshot()` briefly locks each
/// buffer during the merge.
struct ThreadBuf {
    ring: Mutex<Ring>,
}

static NEXT_FLIGHT_UID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cache of (recorder uid → this thread's buffer). Weak so a dropped
    /// recorder's buffers can be reclaimed; pruned on miss.
    static FLIGHT_BUFS: RefCell<Vec<(u64, Weak<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
}

/// Always-on, fixed-capacity black-box event log. See the module docs
/// for the determinism contract.
pub struct FlightRecorder {
    uid: u64,
    /// Per-thread retained-event budget; 0 disables recording.
    capacity: usize,
    /// Clock only — capacity 0, so it retains nothing. Keeping the
    /// `Instant` reads inside `span.rs` keeps this module off the
    /// wallclock-reader list.
    clock: span::Recorder,
    bufs: Mutex<Vec<Arc<ThreadBuf>>>,
}

impl FlightRecorder {
    /// Default per-thread retained-event budget (40 B each — a few
    /// hundred KiB per thread at most).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A recorder with the default per-thread capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` events per thread
    /// (0 = disabled: `record` becomes a no-op).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            // ordering: monotone uid counter — only uniqueness matters,
            // no other data is published through it.
            uid: NEXT_FLIGHT_UID.fetch_add(1, Ordering::Relaxed),
            capacity,
            clock: span::Recorder::with_capacity(0),
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread retained-event budget; 0 means disabled.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since this recorder was created (the event clock).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Append one event to the calling thread's buffer. Negligible cost:
    /// a thread-local lookup plus an uncontended lock; no allocation
    /// after the first call per thread.
    pub fn record(&self, site: EventSite, code: u32, a: u64, b: u64) {
        if self.capacity == 0 {
            return;
        }
        let event = Event {
            ts_ns: self.clock.now_ns(),
            tid: span::thread_id(),
            site,
            code,
            a,
            b,
        };
        let buf = self.thread_buf();
        let mut ring = buf.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Record an injected-fault event given an `nmt-fault` site code
    /// (unknown codes are dropped rather than mislabeled).
    pub fn record_fault(&self, fault_code: u64, sub_code: u32, key: u64) {
        if let Some(site) = EventSite::from_fault_code(fault_code) {
            self.record(site, sub_code, key, 0);
        }
    }

    fn thread_buf(&self) -> Arc<ThreadBuf> {
        FLIGHT_BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(buf) = cache
                .iter()
                .find(|(uid, _)| *uid == self.uid)
                .and_then(|(_, weak)| weak.upgrade())
            {
                return buf;
            }
            // Miss: prune buffers of recorders that have been dropped,
            // then register a fresh buffer with this recorder.
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let buf = Arc::new(ThreadBuf {
                ring: Mutex::new(Ring::default()),
            });
            self.bufs
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(buf.clone());
            cache.push((self.uid, Arc::downgrade(&buf)));
            buf
        })
    }

    /// Merge every thread's buffer into one deterministically ordered
    /// view: events are sorted by [`Event::content_key`] (stable), so
    /// for a given seed the sequence agrees at any thread count modulo
    /// `ts_ns`/`tid`. Use [`sort_by_time`] for a human timeline.
    pub fn snapshot(&self) -> Vec<Event> {
        let bufs = self.bufs.lock().unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<Event> = Vec::new();
        for buf in bufs.iter() {
            let ring = buf.ring.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(ring.events.iter().copied());
        }
        drop(bufs);
        all.sort_by_key(Event::content_key);
        all
    }

    /// Events evicted because a per-thread ring wrapped, summed over all
    /// threads that ever wrote to this recorder.
    pub fn dropped(&self) -> u64 {
        let bufs = self.bufs.lock().unwrap_or_else(PoisonError::into_inner);
        bufs.iter()
            .map(|b| b.ring.lock().unwrap_or_else(PoisonError::into_inner).dropped)
            .sum()
    }

    /// Retained events across all per-thread buffers.
    pub fn len(&self) -> usize {
        let bufs = self.bufs.lock().unwrap_or_else(PoisonError::into_inner);
        bufs.iter()
            .map(|b| b.ring.lock().unwrap_or_else(PoisonError::into_inner).events.len())
            .sum()
    }

    /// True when no thread has recorded anything (or all wrapped away).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("retained", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Sort events into wall-clock order (`ts_ns`, then `tid`) for timeline
/// rendering. The content order from [`FlightRecorder::snapshot`] is the
/// deterministic one; this order is schedule-dependent.
pub fn sort_by_time(events: &mut [Event]) {
    events.sort_by_key(|e| (e.ts_ns, e.tid, e.content_key()));
}

/// Everything a post-mortem needs, frozen at panic (or gate-failure)
/// time. Schema is versioned independently of the run ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticsBundle {
    /// Bundle schema version; bump on any field change.
    pub schema_version: u32,
    /// Why the bundle was written (panic message + location, or the
    /// gate-failure reason).
    pub reason: String,
    /// Matrix being processed on the capturing thread, if a
    /// [`DiagScope`] was active ("" otherwise).
    pub matrix: String,
    /// Span-layer thread id of the capturing thread.
    pub thread: u64,
    /// Live span names on the capturing thread, outermost first.
    pub active_spans: Vec<String>,
    /// Retained flight-recorder events in deterministic content order.
    pub events: Vec<Event>,
    /// Flight-recorder events lost to ring wrap-around.
    pub dropped_events: u64,
    /// Span records lost to ring wrap-around (or a disabled recorder).
    pub dropped_spans: u64,
    /// Fault-injection seed, when a fault plan was active.
    pub fault_seed: Option<u64>,
    /// Fault-injection rate in parts-per-million, when active.
    pub fault_rate_ppm: Option<u32>,
    /// Metric snapshot at capture time.
    pub metrics: MetricsSnapshot,
}

/// Current [`DiagnosticsBundle`] schema version.
pub const BUNDLE_SCHEMA_VERSION: u32 = 1;

impl DiagnosticsBundle {
    /// Serialize to pretty JSON (the on-disk bundle format).
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("bundle serializes")
    }

    /// Parse a bundle back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let bundle: DiagnosticsBundle =
            serde_json::from_str(json).map_err(|e| format!("malformed bundle: {e:?}"))?;
        if bundle.schema_version != BUNDLE_SCHEMA_VERSION {
            return Err(format!(
                "bundle schema v{} (this build reads v{BUNDLE_SCHEMA_VERSION})",
                bundle.schema_version
            ));
        }
        Ok(bundle)
    }

    /// The most recent fault-class event (injected fault or planner
    /// fallback) — the prime suspect for a post-mortem.
    pub fn last_fault_event(&self) -> Option<&Event> {
        self.events
            .iter()
            .filter(|e| e.site.is_fault() || e.site == EventSite::PlannerFallback)
            .max_by_key(|e| (e.ts_ns, e.tid, e.content_key()))
    }

    /// Human-readable post-mortem: failing site, strip/partition, thread,
    /// open spans, and the recent event timeline.
    pub fn render_postmortem(&self) -> String {
        let mut out = String::new();
        out.push_str("== nmt diagnostics bundle ==\n");
        out.push_str(&format!("reason: {}\n", self.reason));
        if !self.matrix.is_empty() {
            out.push_str(&format!("matrix: {}\n", self.matrix));
        }
        out.push_str(&format!("thread: tid {}\n", self.thread));
        match (self.fault_seed, self.fault_rate_ppm) {
            (Some(seed), rate) => out.push_str(&format!(
                "fault identity: seed={seed:#x} rate={}ppm\n",
                rate.map_or_else(|| "?".to_string(), |r| r.to_string())
            )),
            (None, _) => out.push_str("fault identity: none (clean run)\n"),
        }
        if self.active_spans.is_empty() {
            out.push_str("active spans: (none)\n");
        } else {
            out.push_str(&format!("active spans: {}\n", self.active_spans.join(" > ")));
        }
        if self.dropped_spans > 0 {
            out.push_str(&format!(
                "warning: {} span(s) dropped from the span ring buffer\n",
                self.dropped_spans
            ));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "warning: {} flight-recorder event(s) dropped (ring wrapped)\n",
                self.dropped_events
            ));
        }
        if let Some(e) = self.last_fault_event() {
            let (site, unit) = if e.site == EventSite::PlannerFallback {
                match EventSite::from_fault_code(u64::from(e.code)) {
                    Some(s) => (s.name(), s.unit_label()),
                    None => (e.site.name(), e.site.unit_label()),
                }
            } else {
                (e.site.name(), e.site.unit_label())
            };
            out.push_str(&format!(
                "diagnosis: fault site {site} at {unit} {} on thread {}\n",
                e.a, e.tid
            ));
        } else {
            out.push_str("diagnosis: no fault-class events recorded\n");
        }
        let mut timeline = self.events.clone();
        sort_by_time(&mut timeline);
        let shown = timeline.len().min(20);
        out.push_str(&format!(
            "recent events ({} of {}, newest last):\n",
            shown,
            timeline.len()
        ));
        for e in timeline.iter().skip(timeline.len() - shown) {
            out.push_str(&format!(
                "  +{:>12} ns  tid {:>2}  {:<26} code={} a={} b={}\n",
                e.ts_ns,
                e.tid,
                e.site.name(),
                e.code,
                e.a,
                e.b
            ));
        }
        out
    }
}

/// Build a bundle from an observability context, without writing it.
pub fn build_bundle(
    reason: &str,
    matrix: &str,
    obs: &ObsContext,
    fault_seed: Option<u64>,
    fault_rate_ppm: Option<u32>,
) -> DiagnosticsBundle {
    obs.publish_dropped();
    DiagnosticsBundle {
        schema_version: BUNDLE_SCHEMA_VERSION,
        reason: reason.to_string(),
        matrix: matrix.to_string(),
        thread: span::thread_id(),
        active_spans: obs.recorder.active_stack(),
        events: obs.flight.snapshot(),
        dropped_events: obs.flight.dropped(),
        dropped_spans: obs.recorder.dropped(),
        fault_seed,
        fault_rate_ppm,
        metrics: obs.metrics.snapshot(),
    }
}

struct DiagTarget {
    dir: PathBuf,
    obs: ObsContext,
    fault_seed: Option<u64>,
    fault_rate_ppm: Option<u32>,
}

static DIAG_TARGET: Mutex<Option<DiagTarget>> = Mutex::new(None);
static HOOK_INSTALL: Once = Once::new();
static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of (matrix name, per-matrix context) set by [`DiagScope`]:
    /// lets the panic hook attribute the crash to the matrix the
    /// panicking thread was actually sweeping.
    static DIAG_SCOPES: RefCell<Vec<(String, ObsContext)>> = const { RefCell::new(Vec::new()) };
    /// Reentrancy guard: a panic inside the hook must not recurse.
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard scoping diagnostics capture to one unit of work (one
/// matrix of a sweep). While alive on a thread, bundles captured from
/// that thread use `obs` (and name `matrix`) instead of the process-wide
/// context passed to [`install_diagnostics`].
pub struct DiagScope {
    _private: (),
}

impl DiagScope {
    /// Enter a per-matrix diagnostics scope on the current thread.
    pub fn enter(matrix: impl Into<String>, obs: &ObsContext) -> DiagScope {
        DIAG_SCOPES.with(|s| s.borrow_mut().push((matrix.into(), obs.clone())));
        DiagScope { _private: () }
    }
}

impl Drop for DiagScope {
    fn drop(&mut self) {
        DIAG_SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Arm crash diagnostics: remember `dir` + a process-wide fallback
/// context + the fault identity, and (once per process) chain a panic
/// hook that writes a [`DiagnosticsBundle`] before the previous hook
/// runs. Calling again replaces the target (last install wins), so tests
/// and long-lived processes can re-arm with fresh contexts.
pub fn install_diagnostics(
    dir: impl Into<PathBuf>,
    obs: &ObsContext,
    fault_seed: Option<u64>,
    fault_rate_ppm: Option<u32>,
) {
    let target = DiagTarget {
        dir: dir.into(),
        obs: obs.clone(),
        fault_seed,
        fault_rate_ppm,
    };
    *DIAG_TARGET.lock().unwrap_or_else(PoisonError::into_inner) = Some(target);
    HOOK_INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reentered = IN_HOOK.with(|g| g.replace(true));
            if !reentered {
                let reason = panic_reason(info);
                let _ = write_bundle_now(&reason);
                IN_HOOK.with(|g| g.set(false));
            }
            previous(info);
        }));
    });
}

/// Whether [`install_diagnostics`] has armed a target.
pub fn diagnostics_installed() -> bool {
    DIAG_TARGET
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Disarm diagnostics (the panic hook stays chained but becomes a
/// no-op). Mainly for tests.
pub fn uninstall_diagnostics() {
    *DIAG_TARGET.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

fn panic_reason(info: &std::panic::PanicHookInfo<'_>) -> String {
    let message = info
        .payload()
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| info.payload().downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic (non-string payload)".to_string());
    match info.location() {
        Some(loc) => format!("panic at {}:{}: {message}", loc.file(), loc.line()),
        None => format!("panic: {message}"),
    }
}

/// Capture and write a bundle immediately using the armed target (and
/// the calling thread's [`DiagScope`], if any). Returns the bundle path,
/// or `None` when diagnostics are not armed or the write failed — this
/// runs inside a panic hook, so it must never itself panic.
pub fn write_bundle_now(reason: &str) -> Option<PathBuf> {
    let guard = DIAG_TARGET.lock().unwrap_or_else(PoisonError::into_inner);
    let target = guard.as_ref()?;
    let scoped = DIAG_SCOPES.with(|s| s.borrow().last().cloned());
    let (matrix, obs) = match &scoped {
        Some((name, obs)) => (name.as_str(), obs),
        None => ("", &target.obs),
    };
    let bundle = build_bundle(reason, matrix, obs, target.fault_seed, target.fault_rate_ppm);
    let ns = obs.flight.now_ns();
    let dir = target.dir.clone();
    drop(guard);
    write_bundle_file(&dir, &bundle, ns).ok()
}

/// Write `bundle` into `dir` as `nmt-diag-<pid>-<seq>-<ns>.json`.
pub fn write_bundle_file(
    dir: &Path,
    bundle: &DiagnosticsBundle,
    ns: u64,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    // ordering: monotone sequence counter — it only namespaces the file
    // name so concurrent writers never clobber each other.
    let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("nmt-diag-{}-{seq}-{ns}.json", std::process::id()));
    // nmt-lint: allow(determinism-flow) — the fetch_add above reaches this
    //   sink only through the file *name* (pid + sequence + clock are
    //   forensic identifiers by design); the bundle *bytes* are built from
    //   content-ordered snapshots and stay byte-identical across runs.
    std::fs::write(&path, bundle.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_orders_by_content() {
        let fr = FlightRecorder::new();
        fr.record(EventSite::KernelStrip, 0, 2, 10);
        fr.record(EventSite::FarmStrip, 0, 1, 0);
        fr.record(EventSite::FarmStrip, 0, 0, 0);
        let events = fr.snapshot();
        let keys: Vec<_> = events.iter().map(Event::content_key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].site, EventSite::FarmStrip);
        assert_eq!(events[0].a, 0);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn per_thread_ring_wraps_and_counts_drops() {
        let fr = FlightRecorder::with_capacity(2);
        for i in 0..5 {
            fr.record(EventSite::FarmStrip, 0, i, 0);
        }
        let events = fr.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(fr.dropped(), 3);
        // Oldest evicted first: strips 3 and 4 survive.
        assert_eq!(events[0].a, 3);
        assert_eq!(events[1].a, 4);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let fr = FlightRecorder::with_capacity(0);
        fr.record(EventSite::FarmStrip, 0, 0, 0);
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn threads_write_private_buffers_and_merge_deterministically() {
        let fr = Arc::new(FlightRecorder::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let fr = fr.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    fr.record(EventSite::FarmStrip, 0, t * 8 + i, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = fr.snapshot();
        assert_eq!(events.len(), 32);
        let strips: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(strips, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn fault_code_mapping_round_trips() {
        for code in 1..=5u64 {
            let site = EventSite::from_fault_code(code).unwrap();
            assert!(site.is_fault());
        }
        assert_eq!(EventSite::from_fault_code(0), None);
        assert_eq!(EventSite::from_fault_code(6), None);
    }

    #[test]
    fn stable_codes_are_unique_and_cover_all() {
        let mut codes: Vec<u32> = EventSite::ALL.iter().map(|s| s.stable_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), EventSite::ALL.len());
    }

    #[test]
    fn bundle_json_round_trips() {
        let obs = ObsContext::disabled();
        obs.flight.record(EventSite::FaultConvertStrip, 2, 4, 0);
        obs.metrics.counter_add("fault.injected", 1);
        let bundle = build_bundle("test reason", "mat-x", &obs, Some(0xcafe), Some(300_000));
        let parsed = DiagnosticsBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(parsed, bundle);
        assert_eq!(parsed.matrix, "mat-x");
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.fault_seed, Some(0xcafe));
        assert_eq!(parsed.metrics.counters.get("fault.injected"), Some(&1));
    }

    #[test]
    fn bundle_rejects_unknown_schema() {
        let obs = ObsContext::disabled();
        let mut bundle = build_bundle("r", "", &obs, None, None);
        bundle.schema_version = 99;
        assert!(DiagnosticsBundle::from_json(&bundle.to_json()).is_err());
    }

    #[test]
    fn postmortem_names_fault_site_strip_and_thread() {
        let obs = ObsContext::disabled();
        obs.flight.record(EventSite::FarmStrip, 0, 3, 0);
        obs.flight.record(EventSite::FaultConvertStrip, 2, 3, 0);
        let bundle = build_bundle("boom", "mat-y", &obs, Some(1), Some(1000));
        let text = bundle.render_postmortem();
        assert!(text.contains("fault site fault-convert-strip"), "{text}");
        assert!(text.contains("strip 3"), "{text}");
        assert!(text.contains(&format!("on thread {}", bundle.thread)), "{text}");
        assert!(text.contains("matrix: mat-y"), "{text}");
    }

    #[test]
    fn postmortem_warns_on_dropped_data() {
        let obs = ObsContext::disabled();
        drop(obs.recorder.span("discarded")); // disabled recorder counts a drop
        let bundle = build_bundle("r", "", &obs, None, None);
        assert!(bundle.dropped_spans > 0);
        let text = bundle.render_postmortem();
        assert!(text.contains("span(s) dropped"), "{text}");
        // The dropped-span gauge was published into the snapshot too.
        assert!(bundle.metrics.gauges.contains_key("obs.dropped_spans"));
    }

    #[test]
    fn planner_fallback_diagnosis_maps_fault_code() {
        let obs = ObsContext::disabled();
        obs.flight.record(EventSite::PlannerFallback, 1, 7, 0);
        let bundle = build_bundle("r", "", &obs, None, None);
        let text = bundle.render_postmortem();
        assert!(text.contains("fault site fault-convert-strip"), "{text}");
        assert!(text.contains("strip 7"), "{text}");
    }
}
