//! Phase-attributed profiling over the span tree.
//!
//! The [`Profiler`] folds a [`Recorder`](crate::Recorder) snapshot into:
//!
//! * **per-phase self-time** — every span name maps onto the pipeline
//!   phase taxonomy (parse → plan → convert → kernel → reduce, plus
//!   `other` for orchestration shells), and each span contributes its
//!   *self* time (duration minus same-thread children) so nested spans
//!   never double-count;
//! * **per-worker busy/idle** — for every thread lane, busy is the union
//!   of its root spans and idle is the remainder of the profile window
//!   (the engine farm's rayon workers each get a lane);
//! * **farm concurrency / queue depth** — an event sweep over the
//!   `engine.farm.strip` worker spans yields the maximum number of strips
//!   in flight and the time-weighted mean (the queue depth an engine
//!   sees).
//!
//! Phase totals are summed across threads, so on a parallel run they are
//! CPU-seconds, not wall-clock: the convert phase of an 8-worker farm can
//! legitimately exceed the window. Wall-clock questions are answered by
//! the per-worker table and `window_ns`.
//!
//! When allocation counting is on (see [`crate::alloc`]), spans carry
//! `alloc.count` / `alloc.bytes` counters; these are attributed to phases
//! with the same self-time rule (parent deltas include children, so
//! children are subtracted).

use crate::SpanRecord;
use std::collections::BTreeMap;

/// Pipeline phase taxonomy. Every span name maps to exactly one phase via
/// [`phase_of`]; orchestration shells (`planner.execute`,
/// `planner.chosen`) land in [`Phase::Other`] and contribute only their
/// self-time (scheduling overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Matrix ingestion: synthesis (`matgen.*`) and format construction
    /// (`formats.*`).
    Parse,
    /// SSF profiling and the hybrid decision (`planner.plan`,
    /// `planner.explain`).
    Plan,
    /// Near-memory strip conversion: the engine farm and the serial
    /// converter (`engine.convert*`, `engine.farm*`).
    Convert,
    /// Simulated kernel execution, including the cuSPARSE baseline and
    /// audit re-runs (`kernels.*`, `planner.baseline`, `audit.*`).
    Kernel,
    /// The farm's deterministic index-ordered reduction
    /// (`engine.farm.reduce`).
    Reduce,
    /// Everything else: orchestration shells and unclassified spans.
    Other,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Plan,
        Phase::Convert,
        Phase::Kernel,
        Phase::Reduce,
        Phase::Other,
    ];

    /// Stable lowercase name, used in metric names and ledger keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Convert => "convert",
            Phase::Kernel => "kernel",
            Phase::Reduce => "reduce",
            Phase::Other => "other",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Map a span name onto its phase. Order matters: `engine.farm.reduce`
/// is the reduce phase even though it shares the `engine.farm` prefix
/// with convert-phase worker spans.
pub fn phase_of(span_name: &str) -> Phase {
    if span_name.starts_with("matgen.") || span_name.starts_with("formats.") {
        Phase::Parse
    } else if span_name == "planner.plan" || span_name == "planner.explain" {
        Phase::Plan
    } else if span_name.starts_with("engine.farm.reduce") {
        Phase::Reduce
    } else if span_name.starts_with("engine.convert") || span_name.starts_with("engine.farm") {
        Phase::Convert
    } else if span_name.starts_with("kernels.")
        || span_name.starts_with("audit.")
        || span_name == "planner.baseline"
    {
        Phase::Kernel
    } else {
        Phase::Other
    }
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Self-time summed over every span in the phase, across all threads
    /// (CPU-nanoseconds under parallelism).
    pub self_ns: u64,
    /// Number of spans attributed to the phase.
    pub spans: u64,
    /// Self-attributed allocation count (zero unless counting was on).
    pub alloc_count: u64,
    /// Self-attributed allocated bytes (zero unless counting was on).
    pub alloc_bytes: u64,
}

/// Busy/idle accounting for one thread lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Sequential thread id from the recorder.
    pub tid: u64,
    /// Union of this lane's root spans, ns.
    pub busy_ns: u64,
    /// `window_ns - busy_ns`.
    pub idle_ns: u64,
    /// Spans recorded on this lane (including nested ones).
    pub spans: u64,
}

/// The folded result of [`Profiler::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Profile window: latest span end minus earliest span start, ns.
    pub window_ns: u64,
    /// Totals per phase, in [`Phase::ALL`] order (every phase present,
    /// empty phases all-zero).
    pub phases: Vec<(Phase, PhaseTotals)>,
    /// Per-thread busy/idle, ascending tid.
    pub workers: Vec<WorkerStats>,
    /// Maximum `engine.farm.strip` spans in flight at once.
    pub farm_max_in_flight: u64,
    /// Time-weighted mean of in-flight farm strips over the farm window.
    pub farm_mean_queue_depth: f64,
}

impl Profile {
    /// Totals for one phase (always present).
    pub fn phase(&self, phase: Phase) -> PhaseTotals {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, t)| t)
            .unwrap_or_default()
    }

    /// Publish the profile as `perf.*` gauges on a metric registry.
    pub fn publish(&self, metrics: &crate::MetricRegistry) {
        metrics.gauge_set("perf.window_ns", self.window_ns as f64);
        for &(phase, totals) in &self.phases {
            metrics.gauge_set(
                &format!("perf.phase.{}.self_ns", phase.name()),
                totals.self_ns as f64,
            );
            if totals.alloc_count > 0 {
                metrics.gauge_set(
                    &format!("perf.phase.{}.alloc_count", phase.name()),
                    totals.alloc_count as f64,
                );
                metrics.gauge_set(
                    &format!("perf.phase.{}.alloc_bytes", phase.name()),
                    totals.alloc_bytes as f64,
                );
            }
        }
        metrics.gauge_set("perf.workers", self.workers.len() as f64);
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let idle: u64 = self.workers.iter().map(|w| w.idle_ns).sum();
        metrics.gauge_set("perf.worker.busy_ns", busy as f64);
        metrics.gauge_set("perf.worker.idle_ns", idle as f64);
        metrics.gauge_set("perf.farm.max_in_flight", self.farm_max_in_flight as f64);
        metrics.gauge_set("perf.farm.mean_queue_depth", self.farm_mean_queue_depth);
    }
}

/// Folds span snapshots into [`Profile`]s. Stateless; the methods are
/// associated functions so call sites read `Profiler::analyze(&spans)`.
pub struct Profiler;

fn span_counter(span: &SpanRecord, name: &str) -> u64 {
    span.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |&(_, v)| v.max(0.0) as u64)
    // Counters are f64 by API; alloc deltas are exact below 2^53.
}

/// Union length of a set of `[start, end)` intervals.
fn interval_union_ns(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

impl Profiler {
    /// Fold a recorder snapshot into per-phase, per-worker, and farm
    /// concurrency totals. Deterministic: output depends only on the span
    /// records, and all orderings are by phase/tid/time, never map order.
    pub fn analyze(spans: &[SpanRecord]) -> Profile {
        let mut phases: BTreeMap<Phase, PhaseTotals> =
            Phase::ALL.iter().map(|&p| (p, PhaseTotals::default())).collect();

        // Sum of children durations / alloc deltas, keyed by parent id.
        // The ring buffer may have evicted a parent; those children simply
        // have no slot to subtract from, which only over-attributes the
        // (already evicted) parent, never a retained span.
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let mut child_alloc: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut has_parent: BTreeMap<u64, bool> = BTreeMap::new();
        for s in spans {
            has_parent.insert(s.id, s.parent.is_some());
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_default() += s.duration_ns();
                let slot = child_alloc.entry(p).or_default();
                slot.0 += span_counter(s, "alloc.count");
                slot.1 += span_counter(s, "alloc.bytes");
            }
        }

        let mut window_lo = u64::MAX;
        let mut window_hi = 0u64;
        let mut lane_roots: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        let mut lane_spans: BTreeMap<u64, u64> = BTreeMap::new();
        let mut farm_events: Vec<(u64, i64)> = Vec::new();

        for s in spans {
            window_lo = window_lo.min(s.start_ns);
            window_hi = window_hi.max(s.end_ns);
            let self_ns = s
                .duration_ns()
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let (kids_c, kids_b) = child_alloc.get(&s.id).copied().unwrap_or((0, 0));
            let slot = phases.entry(phase_of(&s.name)).or_default();
            slot.self_ns += self_ns;
            slot.spans += 1;
            slot.alloc_count += span_counter(s, "alloc.count").saturating_sub(kids_c);
            slot.alloc_bytes += span_counter(s, "alloc.bytes").saturating_sub(kids_b);

            *lane_spans.entry(s.tid).or_default() += 1;
            // Roots only: a lane's busy time is the union of its top-level
            // spans (descendants are contained in them). A span whose
            // parent was evicted still has `parent: Some(..)`, so it is
            // not mistaken for a root.
            if s.parent.is_none() {
                lane_roots.entry(s.tid).or_default().push((s.start_ns, s.end_ns));
            }
            if s.name == "engine.farm.strip" {
                farm_events.push((s.start_ns, 1));
                farm_events.push((s.end_ns, -1));
            }
        }

        let window_ns = if spans.is_empty() { 0 } else { window_hi - window_lo };

        let workers: Vec<WorkerStats> = lane_spans
            .iter()
            .map(|(&tid, &count)| {
                let busy_ns = interval_union_ns(lane_roots.remove(&tid).unwrap_or_default());
                WorkerStats {
                    tid,
                    busy_ns,
                    idle_ns: window_ns.saturating_sub(busy_ns),
                    spans: count,
                }
            })
            .collect();

        // Event sweep over farm strip spans: ends sort before starts at
        // the same timestamp, so back-to-back strips don't inflate the
        // peak.
        farm_events.sort_unstable_by_key(|&(t, d)| (t, d));
        let mut in_flight = 0i64;
        let mut max_in_flight = 0i64;
        let mut weighted = 0.0f64;
        let mut prev_t: Option<u64> = None;
        let mut farm_lo = u64::MAX;
        let mut farm_hi = 0u64;
        for &(t, d) in &farm_events {
            if let Some(p) = prev_t {
                weighted += (t - p) as f64 * in_flight as f64;
            }
            in_flight += d;
            max_in_flight = max_in_flight.max(in_flight);
            prev_t = Some(t);
            farm_lo = farm_lo.min(t);
            farm_hi = farm_hi.max(t);
        }
        let farm_window = farm_hi.saturating_sub(farm_lo);
        let farm_mean_queue_depth = if farm_window > 0 {
            weighted / farm_window as f64
        } else {
            0.0
        };

        Profile {
            window_ns,
            phases: phases.into_iter().collect(),
            workers,
            farm_max_in_flight: max_in_flight.max(0) as u64,
            farm_mean_queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        tid: u64,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            tid,
            start_ns,
            end_ns,
            counters: Vec::new(),
        }
    }

    #[test]
    fn phase_taxonomy_covers_known_span_names() {
        for (name, want) in [
            ("matgen.generate", Phase::Parse),
            ("formats.load", Phase::Parse),
            ("planner.plan", Phase::Plan),
            ("planner.explain", Phase::Plan),
            ("engine.convert", Phase::Convert),
            ("engine.convert.strip", Phase::Convert),
            ("engine.farm", Phase::Convert),
            ("engine.farm.strip", Phase::Convert),
            ("engine.farm.reduce", Phase::Reduce),
            ("kernels.launch", Phase::Kernel),
            ("planner.baseline", Phase::Kernel),
            ("audit.bstationary", Phase::Kernel),
            ("planner.execute", Phase::Other),
            ("planner.chosen", Phase::Other),
        ] {
            assert_eq!(phase_of(name), want, "{name}");
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        // execute [0,100] > plan [10,30] + chosen [30,90] > launch [40,80]
        let spans = vec![
            span(1, None, "planner.execute", 1, 0, 100),
            span(2, Some(1), "planner.plan", 1, 10, 30),
            span(3, Some(1), "planner.chosen", 1, 30, 90),
            span(4, Some(3), "kernels.launch", 1, 40, 80),
        ];
        let p = Profiler::analyze(&spans);
        assert_eq!(p.window_ns, 100);
        assert_eq!(p.phase(Phase::Plan).self_ns, 20);
        assert_eq!(p.phase(Phase::Kernel).self_ns, 40);
        // execute self = 100 - (20 + 60); chosen self = 60 - 40.
        assert_eq!(p.phase(Phase::Other).self_ns, 20 + 20);
        let total: u64 = p.phases.iter().map(|&(_, t)| t.self_ns).sum();
        assert_eq!(total, 100, "self-times partition the root exactly");
    }

    #[test]
    fn workers_get_busy_and_idle_lanes() {
        let spans = vec![
            span(1, None, "planner.execute", 1, 0, 100),
            span(2, None, "engine.farm.strip", 2, 10, 30),
            span(3, None, "engine.farm.strip", 2, 50, 70),
            span(4, None, "engine.farm.strip", 3, 10, 70),
        ];
        let p = Profiler::analyze(&spans);
        assert_eq!(p.workers.len(), 3);
        let lane = |tid| p.workers.iter().find(|w| w.tid == tid).unwrap();
        assert_eq!(lane(1).busy_ns, 100);
        assert_eq!(lane(1).idle_ns, 0);
        assert_eq!(lane(2).busy_ns, 40);
        assert_eq!(lane(2).idle_ns, 60);
        assert_eq!(lane(3).busy_ns, 60);
    }

    #[test]
    fn farm_concurrency_sweep() {
        let spans = vec![
            span(1, None, "engine.farm.strip", 2, 0, 40),
            span(2, None, "engine.farm.strip", 3, 10, 30),
            span(3, None, "engine.farm.strip", 4, 20, 60),
        ];
        let p = Profiler::analyze(&spans);
        assert_eq!(p.farm_max_in_flight, 3);
        // Integral: [0,10)=1, [10,20)=2, [20,30)=3, [30,40)=2, [40,60)=1
        // = (10 + 20 + 30 + 20 + 20) / 60
        assert!((p.farm_mean_queue_depth - 100.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn alloc_counters_attribute_self_deltas() {
        let mut parent = span(1, None, "engine.convert", 1, 0, 100);
        parent.counters = vec![("alloc.count".into(), 10.0), ("alloc.bytes".into(), 1000.0)];
        let mut child = span(2, Some(1), "kernels.launch", 1, 10, 90);
        child.counters = vec![("alloc.count".into(), 4.0), ("alloc.bytes".into(), 400.0)];
        let p = Profiler::analyze(&[parent, child]);
        assert_eq!(p.phase(Phase::Convert).alloc_count, 6);
        assert_eq!(p.phase(Phase::Convert).alloc_bytes, 600);
        assert_eq!(p.phase(Phase::Kernel).alloc_count, 4);
        assert_eq!(p.phase(Phase::Kernel).alloc_bytes, 400);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let p = Profiler::analyze(&[]);
        assert_eq!(p.window_ns, 0);
        assert!(p.workers.is_empty());
        assert_eq!(p.farm_max_in_flight, 0);
        assert_eq!(p.farm_mean_queue_depth, 0.0);
        assert_eq!(p.phases.len(), Phase::ALL.len());
        assert!(p.phases.iter().all(|&(_, t)| t == PhaseTotals::default()));
    }

    #[test]
    fn publish_emits_perf_gauges() {
        let spans = vec![
            span(1, None, "planner.execute", 1, 0, 100),
            span(2, Some(1), "engine.convert", 1, 10, 60),
        ];
        let reg = crate::MetricRegistry::new();
        Profiler::analyze(&spans).publish(&reg);
        let snap = reg.snapshot();
        let flat = snap.flat();
        let get = |n: &str| {
            flat.get(n)
                .copied()
                .unwrap_or_else(|| panic!("missing gauge {n}"))
        };
        assert_eq!(get("perf.window_ns"), 100.0);
        assert_eq!(get("perf.phase.convert.self_ns"), 50.0);
        assert_eq!(get("perf.phase.other.self_ns"), 50.0);
        assert_eq!(get("perf.workers"), 1.0);
    }
}
