//! Exporters: a JSONL event stream, Chrome trace-event JSON, and a
//! Prometheus text-format metrics page.
//!
//! The Chrome format is the `traceEvents` array of `"ph": "B"` / `"ph": "E"`
//! pairs understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`; timestamps are microseconds. Spans are emitted
//! depth-first per thread so begin/end events always nest correctly, even
//! when adjacent spans share a timestamp.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use serde::{Serialize, Value};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Streams one JSON object per line — the classic JSONL event format.
pub struct JsonlExporter<W: Write> {
    writer: W,
}

impl<W: Write> JsonlExporter<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlExporter { writer }
    }

    /// Write `value` as one compact JSON line.
    pub fn write<T: Serialize + ?Sized>(&mut self, value: &T) -> io::Result<()> {
        let line = serde_json::to_string(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")
    }

    /// Write every span as one line.
    pub fn write_spans(&mut self, spans: &[SpanRecord]) -> io::Result<()> {
        for s in spans {
            self.write(s)?;
        }
        Ok(())
    }

    /// Flush and hand back the writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

fn event(ph: &str, name: &str, ts_ns: u64, tid: u64, args: Option<Value>) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str("nmt".to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        // Trace-event timestamps are in microseconds.
        ("ts".to_string(), Value::F64(ts_ns as f64 / 1000.0)),
        ("pid".to_string(), Value::U64(1)),
        ("tid".to_string(), Value::U64(tid)),
    ];
    if let Some(args) = args {
        fields.push(("args".to_string(), args));
    }
    Value::Object(fields)
}

fn push_span_events(spans: &[SpanRecord], children: &[Vec<usize>], i: usize, out: &mut Vec<Value>) {
    let s = &spans[i];
    out.push(event("B", &s.name, s.start_ns, s.tid, None));
    for &c in &children[i] {
        push_span_events(spans, children, c, out);
    }
    let args = if s.counters.is_empty() {
        None
    } else {
        Some(Value::Object(
            s.counters
                .iter()
                .map(|(k, v)| (k.clone(), Serialize::to_value(v)))
                .collect(),
        ))
    };
    out.push(event("E", &s.name, s.end_ns, s.tid, args));
}

/// Build the Chrome trace document as a JSON value tree.
pub fn chrome_trace_value(spans: &[SpanRecord]) -> Value {
    // Index spans, then emit each parent's subtree depth-first so B/E
    // events pair up by construction. Spans whose parent was evicted from
    // the ring buffer become roots.
    let index_of = |id: u64| spans.iter().position(|s| s.id == id);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.and_then(index_of) {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        (spans[*a].start_ns, spans[*a].id).cmp(&(spans[*b].start_ns, spans[*b].id))
    };
    roots.sort_by(by_start);
    for c in &mut children {
        c.sort_by(by_start);
    }
    let mut events = Vec::with_capacity(spans.len() * 2);
    for r in roots {
        push_span_events(spans, &children, r, &mut events);
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::Str("ns".to_string()),
        ),
    ])
}

/// Render the Chrome trace document as a JSON string.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
    serde_json::to_string(&chrome_trace_value(spans)).expect("trace serializes")
}

/// Write the Chrome trace document to `w`.
pub fn write_chrome_trace<W: Write>(mut w: W, spans: &[SpanRecord]) -> io::Result<()> {
    w.write_all(chrome_trace_json(spans).as_bytes())?;
    w.write_all(b"\n")
}

/// Sanitize a dotted metric name into a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Every illegal character (including the
/// registry's dots) becomes `_`; a digit at the start of the name **or of
/// any dotted segment** gains a `_` prefix. The segment rule keeps dotted
/// names collision-free after flattening: without it `fault.4x` and a
/// literal `fault_4x` would both render as `fault_4x`; with it the dotted
/// name becomes `fault__4x`.
pub fn sanitize_prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    let mut prev: Option<char> = None;
    for ch in name.chars() {
        let legal = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        let segment_start = match prev {
            None => true,
            Some('.') => true,
            Some(_) => false,
        };
        if segment_start && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { ch } else { '_' });
        prev = Some(ch);
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render spans as inferno-compatible folded stacks: one line per unique
/// call path, `frame;frame;... <self_ns>`, value = the path's **self**
/// time in nanoseconds (duration minus same-thread children). Each stack
/// is rooted at a `tid<N>` frame, one per thread lane, so farm workers
/// show up as separate towers. Because self-times partition every span
/// exactly, the values of all lines sum to the total wall-time of the
/// root spans — feed the text to `inferno-flamegraph` (or any
/// `flamegraph.pl`-compatible tool) unchanged.
pub fn flamegraph_folded(spans: &[SpanRecord]) -> String {
    let index_of = |id: u64| spans.iter().position(|s| s.id == id);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.and_then(index_of) {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        (spans[*a].start_ns, spans[*a].id).cmp(&(spans[*b].start_ns, spans[*b].id))
    };
    roots.sort_by(by_start);
    for c in &mut children {
        c.sort_by(by_start);
    }

    // Frame separator is ';' and the count separator is the last space,
    // so both must be scrubbed from span names.
    let frame = |name: &str| name.replace([';', ' '], "_");

    fn walk(
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        path: &mut String,
        frame: &dyn Fn(&str) -> String,
        folded: &mut std::collections::BTreeMap<String, u64>,
    ) {
        let depth = path.len();
        path.push(';');
        path.push_str(&frame(&spans[i].name));
        let kids_ns: u64 = children[i].iter().map(|&c| spans[c].duration_ns()).sum();
        let self_ns = spans[i].duration_ns().saturating_sub(kids_ns);
        if self_ns > 0 {
            *folded.entry(path.clone()).or_default() += self_ns;
        }
        for &c in &children[i] {
            walk(spans, children, c, path, frame, folded);
        }
        path.truncate(depth);
    }

    let mut folded = std::collections::BTreeMap::new();
    for r in roots {
        let mut path = format!("tid{}", spans[r].tid);
        walk(spans, &children, r, &mut path, &frame, &mut folded);
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// Write the folded-stack flamegraph text to `w`.
pub fn write_flamegraph<W: Write>(mut w: W, spans: &[SpanRecord]) -> io::Result<()> {
    w.write_all(flamegraph_folded(spans).as_bytes())
}

/// Format a float the way the Prometheus text format expects (`+Inf`,
/// `-Inf`, `NaN`, otherwise Rust's shortest round-trip decimal).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a [`MetricsSnapshot`] in the Prometheus text exposition format.
///
/// Counters and gauges emit a `# TYPE` header and one sample each;
/// histograms emit cumulative `<name>_bucket{le="..."}` samples over the
/// non-empty log₂ buckets (upper bound = the bucket's inclusive `hi`),
/// the mandatory `le="+Inf"` bucket, and `<name>_sum` / `<name>_count`.
/// Names are passed through [`sanitize_prometheus_name`]; output is
/// deterministic (registry maps are ordered).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = sanitize_prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, &v) in &snap.gauges {
        let n = sanitize_prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(v));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for b in &h.buckets {
            cum += b.count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", b.hi);
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// Write the Prometheus text page to `w`.
pub fn write_prometheus<W: Write>(mut w: W, snap: &MetricsSnapshot) -> io::Result<()> {
    w.write_all(render_prometheus(snap).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricRegistry, Recorder};

    fn sample_spans() -> Vec<SpanRecord> {
        let rec = Recorder::with_capacity(16);
        {
            let _plan = rec.span("plan");
            {
                let mut convert = rec.span("convert");
                convert.counter("elements", 8.0);
            }
            drop(rec.span("kernel"));
        }
        rec.snapshot()
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let spans = sample_spans();
        let mut exp = JsonlExporter::new(Vec::new());
        exp.write_spans(&spans).unwrap();
        let buf = exp.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), spans.len());
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("name").and_then(Value::as_str).is_some());
            assert!(v.get("end_ns").and_then(Value::as_u64).is_some());
        }
    }

    #[test]
    fn chrome_trace_has_matched_nested_events() {
        let spans = sample_spans();
        let json = chrome_trace_json(&spans);
        let doc: Value = serde_json::from_str(&json).expect("trace is valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), spans.len() * 2);
        // Walk the stream: every E must close the innermost open B.
        let mut stack: Vec<&str> = Vec::new();
        for e in events {
            let name = e["name"].as_str().unwrap();
            match e["ph"].as_str().unwrap() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop(), Some(name), "E closes innermost B"),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stack.is_empty(), "all B events closed");
        // The child opens inside its parent in stream order.
        let order: Vec<(&str, &str)> = events
            .iter()
            .map(|e| (e["ph"].as_str().unwrap(), e["name"].as_str().unwrap()))
            .collect();
        assert_eq!(order[0], ("B", "plan"));
        assert_eq!(order[1], ("B", "convert"));
        assert_eq!(order[2], ("E", "convert"));
        assert_eq!(*order.last().unwrap(), ("E", "plan"));
    }

    #[test]
    fn chrome_trace_counters_become_args() {
        let spans = sample_spans();
        let doc: Value = serde_json::from_str(&chrome_trace_json(&spans)).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let end_convert = events
            .iter()
            .find(|e| {
                e["ph"].as_str() == Some("E") && e["name"].as_str() == Some("convert")
            })
            .unwrap();
        assert_eq!(end_convert["args"]["elements"].as_f64(), Some(8.0));
    }

    #[test]
    fn orphaned_children_become_roots() {
        // A child whose parent id is missing (evicted) must still export.
        let spans = vec![SpanRecord {
            id: 7,
            parent: Some(3),
            name: "orphan".into(),
            tid: 1,
            start_ns: 10,
            end_ns: 20,
            counters: vec![],
        }];
        let doc: Value = serde_json::from_str(&chrome_trace_json(&spans)).unwrap();
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            sanitize_prometheus_name("planner.phase.plan_ns"),
            "planner_phase_plan_ns"
        );
        assert_eq!(sanitize_prometheus_name("a.b-c/d e"), "a_b_c_d_e");
        assert_eq!(sanitize_prometheus_name("9lives"), "_9lives");
        assert_eq!(sanitize_prometheus_name(""), "_");
        assert_eq!(sanitize_prometheus_name("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn segment_initial_digits_get_the_leading_digit_guard() {
        // A digit right after a dot gets the same `_` prefix as a
        // name-initial digit, so `fault.4x` cannot collide with a literal
        // `fault_4x`.
        assert_eq!(sanitize_prometheus_name("fault.4x"), "fault__4x");
        assert_eq!(sanitize_prometheus_name("fault_4x"), "fault_4x");
        assert_eq!(sanitize_prometheus_name("a.1.b2"), "a__1_b2");
        assert_eq!(sanitize_prometheus_name("9.9"), "_9__9");
        // Digits *inside* a segment stay untouched.
        assert_eq!(sanitize_prometheus_name("engine.x4.bytes"), "engine_x4_bytes");
    }

    #[test]
    fn sanitization_collision_triangle_is_documented() {
        // The three spellings the digit guard has to keep straight:
        let dotted = sanitize_prometheus_name("fault.4x");
        let single = sanitize_prometheus_name("fault_4x");
        let double = sanitize_prometheus_name("fault__4x");
        assert_eq!(dotted, "fault__4x");
        assert_eq!(single, "fault_4x");
        assert_ne!(dotted, single, "the guard keeps `.4` and `_4` apart");
        // Residual, accepted collision: a literal `__4` is spelled the
        // same as a sanitized `.4`. Registry names are lint-enforced
        // lowercase-dotted (`metric-name` rule), so the literal form
        // cannot occur in-tree; this pins the boundary of the guarantee.
        assert_eq!(double, dotted);

        // When colliding names *are* forced in, both samples still render
        // (same exposition name twice) — collision degrades the page, it
        // does not drop data.
        let reg = MetricRegistry::new();
        reg.counter_add("fault.4x", 1);
        reg.counter_add("fault__4x", 2);
        reg.counter_add("fault_4x", 4);
        let page = render_prometheus(&reg.snapshot());
        assert_eq!(page.matches("fault__4x 1").count(), 1);
        assert_eq!(page.matches("fault__4x 2").count(), 1);
        assert_eq!(page.matches("fault_4x 4").count(), 1);
    }

    #[test]
    fn flamegraph_lines_sum_to_root_wall_time() {
        // execute [0,100] > plan [10,30] + chosen [30,90] > launch [40,80]
        let mk = |id, parent, name: &str, s, e| SpanRecord {
            id,
            parent,
            name: name.into(),
            tid: 1,
            start_ns: s,
            end_ns: e,
            counters: vec![],
        };
        let spans = vec![
            mk(1, None, "planner.execute", 0, 100),
            mk(2, Some(1), "planner.plan", 10, 30),
            mk(3, Some(1), "planner.chosen", 30, 90),
            mk(4, Some(3), "kernels.launch", 40, 80),
        ];
        let folded = flamegraph_folded(&spans);
        let mut total = 0u64;
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("folded line");
            assert!(stack.starts_with("tid1;planner.execute"), "{stack}");
            total += ns.parse::<u64>().expect("integer self-time");
        }
        assert_eq!(total, 100, "self-times partition the root span");
        assert!(folded.contains("tid1;planner.execute;planner.chosen;kernels.launch 40"));
        assert!(folded.contains("tid1;planner.execute;planner.plan 20"));
        // Root self-time: 100 - (20 + 60) = 20.
        assert!(folded.lines().any(|l| l == "tid1;planner.execute 20"));
    }

    #[test]
    fn flamegraph_merges_identical_stacks_and_scrubs_frames() {
        let mk = |id, parent, name: &str, s, e| SpanRecord {
            id,
            parent,
            name: name.into(),
            tid: 1,
            start_ns: s,
            end_ns: e,
            counters: vec![],
        };
        let spans = vec![
            mk(1, None, "root", 0, 100),
            mk(2, Some(1), "strip; odd name", 0, 10),
            mk(3, Some(1), "strip; odd name", 10, 30),
        ];
        let folded = flamegraph_folded(&spans);
        // Two same-named children fold into one line with summed time,
        // and ';'/' ' in the name are scrubbed to keep the format parseable.
        assert!(folded.contains("tid1;root;strip__odd_name 30"), "{folded}");
        assert_eq!(
            folded.lines().filter(|l| l.contains("odd_name")).count(),
            1
        );
    }

    #[test]
    fn flamegraph_separates_thread_lanes() {
        let mk = |id, name: &str, tid, s, e| SpanRecord {
            id,
            parent: None,
            name: name.into(),
            tid,
            start_ns: s,
            end_ns: e,
            counters: vec![],
        };
        let spans = vec![
            mk(1, "planner.execute", 1, 0, 100),
            mk(2, "engine.farm.strip", 2, 10, 40),
            mk(3, "engine.farm.strip", 3, 10, 50),
        ];
        let folded = flamegraph_folded(&spans);
        assert!(folded.contains("tid1;planner.execute 100"));
        assert!(folded.contains("tid2;engine.farm.strip 30"));
        assert!(folded.contains("tid3;engine.farm.strip 40"));
    }

    #[test]
    fn prometheus_special_floats() {
        let m = crate::MetricRegistry::new();
        m.gauge_set("g.inf", f64::INFINITY);
        m.gauge_set("g.nan", f64::NAN);
        m.gauge_set("g.neg", f64::NEG_INFINITY);
        let page = render_prometheus(&m.snapshot());
        assert!(page.contains("g_inf +Inf"));
        assert!(page.contains("g_nan NaN"));
        assert!(page.contains("g_neg -Inf"));
    }

    /// `(name, le, cumulative count)` for one parsed `_bucket` sample.
    type ParsedBucket = (String, String, u64);

    /// Minimal text-format parser used to round-trip the exporter output.
    fn parse_prometheus(page: &str) -> (Vec<(String, f64)>, Vec<ParsedBucket>) {
        let mut scalars = Vec::new(); // (name, value) for counters/gauges/_sum/_count
        let mut buckets = Vec::new(); // (name, le, cumulative count)
        for line in page.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line");
            if let Some((name, rest)) = name_part.split_once('{') {
                let le = rest
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix("\"}"))
                    .expect("le label");
                buckets.push((
                    name.trim_end_matches("_bucket").to_string(),
                    le.to_string(),
                    value.parse().expect("bucket count"),
                ));
            } else {
                scalars.push((name_part.to_string(), value.parse().expect("value")));
            }
        }
        (scalars, buckets)
    }

    #[test]
    fn prometheus_round_trips_counters_gauges_histograms() {
        let m = crate::MetricRegistry::new();
        m.counter_add("sim.dram.bytes", 4096);
        m.counter_add("kernels.chosen.flops", 123);
        m.gauge_set("engine.comparator.occupancy", 0.75);
        for v in [1u64, 1, 5, 5, 5, 1000] {
            m.histogram_record("kernel.strip.nnz", v);
        }
        let snap = m.snapshot();
        let page = render_prometheus(&snap);
        let (scalars, buckets) = parse_prometheus(&page);
        let scalar = |n: &str| {
            scalars
                .iter()
                .find(|(k, _)| k == n)
                .unwrap_or_else(|| panic!("missing {n}"))
                .1
        };
        // Every counter and gauge survives with its value.
        assert_eq!(scalar("sim_dram_bytes"), 4096.0);
        assert_eq!(scalar("kernels_chosen_flops"), 123.0);
        assert_eq!(scalar("engine_comparator_occupancy"), 0.75);
        // Histogram count/sum survive.
        let h = &snap.histograms["kernel.strip.nnz"];
        assert_eq!(scalar("kernel_strip_nnz_count"), h.count as f64);
        assert_eq!(scalar("kernel_strip_nnz_sum"), h.sum as f64);
        // Buckets are cumulative, end at +Inf == count, and their
        // increments reproduce the snapshot's per-bucket counts.
        let hb: Vec<&(String, String, u64)> = buckets
            .iter()
            .filter(|(n, _, _)| n == "kernel_strip_nnz")
            .collect();
        assert_eq!(*hb.last().expect("has +Inf"), &(
            "kernel_strip_nnz".to_string(),
            "+Inf".to_string(),
            h.count
        ));
        let mut prev = 0;
        for ((_, le, cum), want) in hb.iter().zip(&h.buckets) {
            assert_eq!(le.parse::<u64>().expect("le bound"), want.hi);
            assert_eq!(cum - prev, want.count, "bucket le={le}");
            assert!(*cum >= prev, "cumulative counts are monotone");
            prev = *cum;
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let spans = vec![SpanRecord {
            id: 1,
            parent: None,
            name: "s".into(),
            tid: 1,
            start_ns: 1500,
            end_ns: 2500,
            counters: vec![],
        }];
        let doc: Value = serde_json::from_str(&chrome_trace_json(&spans)).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["ts"].as_f64(), Some(1.5));
        assert_eq!(events[1]["ts"].as_f64(), Some(2.5));
    }
}
