//! Typed metric registry: monotonic counters, gauges, and log₂-bucketed
//! histograms, addressed by dotted names (`<crate>.<component>.<name>`).
//!
//! The registry replaces ad-hoc "stats struct" fields for cross-cutting
//! reporting: instrumented code adds to it as it runs, and a
//! [`MetricsSnapshot`] serializes the whole state for `--metrics-json`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for `value`: bucket 0 holds exactly 0, bucket `i >= 1`
/// holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

#[derive(Debug, Clone, Default)]
struct Histogram {
    counts: Vec<u64>, // indexed by bucket_index, allocated lazily
    count: u64,
    sum: u64,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HISTOGRAM_BUCKETS];
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        // Saturate rather than wrap: the sum only feeds the mean, and a
        // pinned-at-max mean is more honest than a wrapped one.
        self.sum = self.sum.saturating_add(value);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.gauges.get(name).copied()
    }

    /// Record one observation of `value` in histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Copy the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    let buckets = h
                        .counts
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let (lo, hi) = bucket_bounds(i);
                            HistogramBucket { lo, hi, count: c }
                        })
                        .collect();
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            buckets,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket: values in `lo..=hi` seen `count` times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// Serializable copy of one histogram (empty buckets elided).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), estimated from the log₂
    /// buckets with linear interpolation inside the containing bucket.
    ///
    /// Observations are ranked `0..count`; the continuous target rank is
    /// `p/100 · (count − 1)`. The bucket holding that rank contributes a
    /// value interpolated across its `[lo, hi]` range by the rank's
    /// position within the bucket, so the estimate is exact for
    /// single-bucket data at the bucket floor and never leaves the
    /// bucket's bounds. Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = p / 100.0 * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if target < (cum + b.count) as f64 || i + 1 == self.buckets.len() {
                let within = if b.count <= 1 {
                    0.0
                } else {
                    ((target - cum as f64) / (b.count - 1) as f64).clamp(0.0, 1.0)
                };
                return b.lo as f64 + (b.hi as f64 - b.lo as f64) * within;
            }
            cum += b.count;
        }
        0.0
    }

    /// Median estimate ([`percentile`](Self::percentile) at 50).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }
}

/// Point-in-time copy of a whole [`MetricRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Flatten to one `name -> number` map (histograms contribute
    /// `<name>.count` and `<name>.mean`), for embedding in flat records.
    pub fn flat(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (k, &v) in &self.counters {
            out.insert(k.clone(), v as f64);
        }
        for (k, &v) in &self.gauges {
            out.insert(k.clone(), v);
        }
        for (k, h) in &self.histograms {
            out.insert(format!("{k}.count"), h.count as f64);
            out.insert(format!("{k}.mean"), h.mean());
        }
        out
    }

    /// Serialize as pretty JSON (the `--metrics-json` artifact).
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricRegistry::new();
        m.counter_add("a.b.c", 2);
        m.counter_add("a.b.c", 3);
        assert_eq!(m.counter("a.b.c"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricRegistry::new();
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly zero; bucket i >= 1 is [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i > 0 {
                assert_eq!(lo, bucket_bounds(i - 1).1 + 1, "buckets are contiguous");
            }
        }
    }

    #[test]
    fn histogram_snapshot_elides_empty_buckets() {
        let m = MetricRegistry::new();
        for v in [0, 1, 1, 5, 1000] {
            m.histogram_record("h", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert!((h.mean() - 201.4).abs() < 1e-12);
        let by_lo: Vec<(u64, u64)> = h.buckets.iter().map(|b| (b.lo, b.count)).collect();
        assert_eq!(by_lo, vec![(0, 1), (1, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn percentiles_empty_histogram_is_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn percentiles_single_sample_hit_its_bucket() {
        let m = MetricRegistry::new();
        m.histogram_record("h", 5); // bucket [4, 7]
        let h = &m.snapshot().histograms["h"];
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!((4.0..=7.0).contains(&v), "p{p} = {v} outside bucket");
        }
        assert_eq!(h.p50(), 4.0, "single sample pins the bucket floor");
    }

    #[test]
    fn percentiles_interpolate_within_bucket() {
        let m = MetricRegistry::new();
        // Ten samples, all in bucket [64, 127]: ranks 0..=9 spread linearly
        // across the bucket range.
        for _ in 0..10 {
            m.histogram_record("h", 100);
        }
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.percentile(0.0), 64.0);
        assert_eq!(h.percentile(100.0), 127.0);
        let p50 = h.p50();
        assert!(p50 > 64.0 && p50 < 127.0, "p50 = {p50}");
        // Monotone in p.
        assert!(h.percentile(25.0) <= h.p50());
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
    }

    #[test]
    fn percentiles_across_buckets_follow_mass() {
        let m = MetricRegistry::new();
        // 90 small values, 10 large ones: p50 stays small, p99 lands high.
        for _ in 0..90 {
            m.histogram_record("h", 2); // bucket [2, 3]
        }
        for _ in 0..10 {
            m.histogram_record("h", 1000); // bucket [512, 1023]
        }
        let h = &m.snapshot().histograms["h"];
        assert!(h.p50() <= 3.0, "p50 = {}", h.p50());
        assert!(h.p95() >= 512.0, "p95 = {}", h.p95());
        assert!(h.p99() >= 512.0 && h.p99() <= 1023.0, "p99 = {}", h.p99());
    }

    #[test]
    fn percentile_edges_empty_and_single_bucket() {
        // Empty: every p, including the clamped extremes, is exactly 0.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        for p in [-1.0, 0.0, 50.0, 100.0, 400.0] {
            assert_eq!(empty.percentile(p), 0.0);
        }

        // Two samples in one bucket: ranks 0 and 1 span the full [lo, hi]
        // range, so p0 pins the floor and p100 the ceiling exactly —
        // the `count - 1` rank denominator, not `count`, makes p100
        // land on hi instead of past it.
        let m = MetricRegistry::new();
        m.histogram_record("h", 4);
        m.histogram_record("h", 7); // both land in bucket [4, 7]
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.buckets.len(), 1, "one bucket holds both");
        assert_eq!(h.percentile(0.0), 4.0);
        assert_eq!(h.percentile(100.0), 7.0);
        assert_eq!(h.percentile(50.0), 5.5, "midpoint of a 2-sample bucket");

        // A single sample has no second rank to interpolate toward:
        // every percentile collapses to the bucket floor (`within = 0`).
        let m1 = MetricRegistry::new();
        m1.histogram_record("one", 5);
        let one = &m1.snapshot().histograms["one"];
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(one.percentile(p), 4.0);
        }

        // Value 0 lives in the degenerate [0, 0] bucket; interpolation
        // across a zero-width range stays at 0.
        let m0 = MetricRegistry::new();
        m0.histogram_record("z", 0);
        m0.histogram_record("z", 0);
        let z = &m0.snapshot().histograms["z"];
        assert_eq!(z.percentile(0.0), 0.0);
        assert_eq!(z.percentile(100.0), 0.0);
    }

    #[test]
    fn percentiles_saturating_bucket_stay_finite() {
        let m = MetricRegistry::new();
        m.histogram_record("h", u64::MAX);
        m.histogram_record("h", u64::MAX - 1);
        let h = &m.snapshot().histograms["h"];
        let (lo, hi) = bucket_bounds(64);
        for p in [50.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v.is_finite());
            assert!(v >= lo as f64 && v <= hi as f64, "p{p} = {v}");
        }
        // Percentile clamps out-of-range p rather than extrapolating.
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(400.0), h.percentile(100.0));
    }

    #[test]
    fn snapshot_flattens() {
        let m = MetricRegistry::new();
        m.counter_add("c", 4);
        m.gauge_set("g", 0.5);
        m.histogram_record("h", 10);
        let flat = m.snapshot().flat();
        assert_eq!(flat["c"], 4.0);
        assert_eq!(flat["g"], 0.5);
        assert_eq!(flat["h.count"], 1.0);
        assert_eq!(flat["h.mean"], 10.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = MetricRegistry::new();
        m.counter_add("sim.dram.bytes", 1 << 20);
        m.gauge_set("engine.comparator.occupancy", 0.75);
        m.histogram_record("kernel.strip.flops", 4096);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
