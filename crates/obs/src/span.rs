//! Hierarchical wall-clock spans with a bounded, thread-safe sink.
//!
//! A [`Span`] is an RAII guard: it notes the start time when opened and
//! writes one [`SpanRecord`] into the owning [`Recorder`] when dropped.
//! Parentage is tracked per thread — a span opened while another span from
//! the same recorder is live on the same thread becomes its child — so the
//! exported trace shows `plan → convert → kernel` nesting without any
//! explicit plumbing.

use serde::{Serialize, Value};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span: times are nanoseconds since the recorder's epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder.
    pub id: u64,
    /// Enclosing span on the same thread, if any survived in the buffer.
    pub parent: Option<u64>,
    /// Span name, e.g. `"planner.execute"`.
    pub name: String,
    /// Small sequential thread id (not the OS tid).
    pub tid: u64,
    /// Start, ns since the recorder was created.
    pub start_ns: u64,
    /// End, ns since the recorder was created. Always `>= start_ns`.
    pub end_ns: u64,
    /// User-attached counters, in attachment order.
    pub counters: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Serialize::to_value(v)))
                .collect(),
        );
        Value::Object(vec![
            ("id".to_string(), Value::U64(self.id)),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Value::U64(p),
                    None => Value::Null,
                },
            ),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("tid".to_string(), Value::U64(self.tid)),
            ("start_ns".to_string(), Value::U64(self.start_ns)),
            ("end_ns".to_string(), Value::U64(self.end_ns)),
            ("counters".to_string(), counters),
        ])
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Sequential id of this thread, assigned on first span.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Stack of live spans on this thread: (recorder address, span id,
    /// span name). Keyed by address so two recorders in one test don't
    /// cross-link; the name is kept so a panic hook can report which
    /// spans were still open (live spans only land in the ring on drop).
    static SPAN_STACK: RefCell<Vec<(usize, u64, String)>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            // ordering: monotone id counter — only uniqueness matters;
            // the id publishes no other data.
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

struct Inner {
    spans: std::collections::VecDeque<SpanRecord>,
    dropped: u64,
    next_id: u64,
}

/// Thread-safe sink holding up to `capacity` completed spans in a ring
/// buffer; older records are evicted (and counted) when it wraps. A
/// capacity of `0` disables recording entirely.
pub struct Recorder {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Recorder {
    /// Default retained-span budget (~64 B each, so a few MiB at most).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A recorder retaining at most `capacity` spans (0 = disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            epoch: Instant::now(),
            capacity,
            inner: Mutex::new(Inner {
                spans: std::collections::VecDeque::new(),
                dropped: 0,
                next_id: 1,
            }),
        }
    }

    /// Retained-span budget; 0 means disabled.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds elapsed since this recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span; it records itself when the returned guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        if self.capacity == 0 {
            return Span {
                recorder: self,
                id: 0,
                parent: None,
                name: String::new(),
                start_ns: 0,
                counters: Vec::new(),
                live: false,
                alloc: crate::alloc::AllocScope::begin(),
            };
        }
        let key = self as *const Recorder as usize;
        let id = {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let id = inner.next_id;
            inner.next_id += 1;
            id
        };
        let name = name.into();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|(k, _, _)| *k == key)
                .map(|&(_, id, _)| id);
            s.push((key, id, name.clone()));
            parent
        });
        Span {
            recorder: self,
            id,
            parent,
            name,
            start_ns: self.now_ns(),
            counters: Vec::new(),
            live: true,
            alloc: crate::alloc::AllocScope::begin(),
        }
    }

    /// Copy out all retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.spans.iter().cloned().collect()
    }

    /// Spans evicted because the ring wrapped (plus all spans, if disabled).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dropped
    }

    /// Names of this recorder's spans still open on the *current* thread,
    /// outermost first. Live spans only reach [`Recorder::snapshot`] when
    /// their guard drops, so this is the only view a panic hook gets of
    /// the call path that was executing when the panic unwound.
    pub fn active_stack(&self) -> Vec<String> {
        let key = self as *const Recorder as usize;
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .filter(|(k, _, _)| *k == key)
                .map(|(_, _, name)| name.clone())
                .collect()
        })
    }

    fn finish(&self, record: SpanRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(record);
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity)
            .field("retained", &inner.spans.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

/// RAII guard for one open span. Attach counters with [`Span::counter`];
/// the record is written when this drops.
pub struct Span<'r> {
    recorder: &'r Recorder,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    counters: Vec<(String, f64)>,
    live: bool,
    /// Allocation delta over the span's lifetime on this thread; inert
    /// (zeros) unless [`crate::alloc::enable_counting`] was on at open.
    alloc: crate::alloc::AllocScope,
}

impl Span<'_> {
    /// Attach (or overwrite) a named counter on this span.
    pub fn counter(&mut self, name: impl Into<String>, value: f64) {
        if !self.live {
            return;
        }
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name, value)),
        }
    }

    /// This span's id (0 when the recorder is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.live {
            if self.recorder.capacity == 0 {
                self.recorder.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dropped += 1;
            }
            return;
        }
        let key = self.recorder as *const Recorder as usize;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normally ours is the top entry for this recorder; remove by
            // id to stay correct even if guards drop out of order.
            if let Some(pos) = s.iter().rposition(|(k, id, _)| *k == key && *id == self.id) {
                s.remove(pos);
            }
        });
        let (alloc_count, alloc_bytes) = self.alloc.finish();
        if alloc_count > 0 {
            self.counters
                .push(("alloc.count".to_string(), alloc_count as f64));
            self.counters
                .push(("alloc.bytes".to_string(), alloc_bytes as f64));
        }
        let end_ns = self.recorder.now_ns().max(self.start_ns);
        self.recorder.finish(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            tid: thread_id(),
            start_ns: self.start_ns,
            end_ns,
            counters: std::mem::take(&mut self.counters),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_link_and_nest_in_time() {
        let rec = Recorder::with_capacity(16);
        {
            let _outer = rec.span("outer");
            let mut inner = rec.span("inner");
            inner.counter("n", 3.0);
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        // Children drop first, so "inner" is recorded first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.counters, vec![("n".to_string(), 3.0)]);
        // Timing monotonicity: child is contained in the parent.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert!(inner.end_ns >= inner.start_ns);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn siblings_share_a_parent() {
        let rec = Recorder::with_capacity(16);
        {
            let _outer = rec.span("outer");
            drop(rec.span("a"));
            drop(rec.span("b"));
        }
        let spans = rec.snapshot();
        let outer_id = spans.iter().find(|s| s.name == "outer").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(outer_id), "{name} should nest in outer");
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let rec = Recorder::with_capacity(2);
        for i in 0..5 {
            drop(rec.span(format!("s{i}")));
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "s3");
        assert_eq!(spans[1].name, "s4");
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let rec = Recorder::with_capacity(0);
        {
            let mut s = rec.span("ignored");
            s.counter("n", 1.0); // must not panic
            assert_eq!(s.id(), 0);
        }
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn two_recorders_do_not_cross_link() {
        let a = Recorder::with_capacity(4);
        let b = Recorder::with_capacity(4);
        {
            let _pa = a.span("pa");
            drop(b.span("cb")); // no live span in b => root
        }
        assert_eq!(b.snapshot()[0].parent, None);
        assert_eq!(a.snapshot()[0].parent, None);
    }

    #[test]
    fn counter_overwrites_by_name() {
        let rec = Recorder::with_capacity(4);
        {
            let mut s = rec.span("s");
            s.counter("x", 1.0);
            s.counter("x", 2.0);
            s.counter("y", 3.0);
        }
        let spans = rec.snapshot();
        assert_eq!(
            spans[0].counters,
            vec![("x".to_string(), 2.0), ("y".to_string(), 3.0)]
        );
    }

    #[test]
    fn active_stack_tracks_live_spans_outermost_first() {
        let rec = Recorder::with_capacity(16);
        let other = Recorder::with_capacity(16);
        assert!(rec.active_stack().is_empty());
        {
            let _outer = rec.span("outer");
            let _elsewhere = other.span("elsewhere");
            let _inner = rec.span("inner");
            assert_eq!(rec.active_stack(), vec!["outer", "inner"]);
            assert_eq!(other.active_stack(), vec!["elsewhere"]);
        }
        assert!(rec.active_stack().is_empty());
        assert!(other.active_stack().is_empty());
    }

    #[test]
    fn spans_from_threads_get_distinct_tids() {
        let rec = std::sync::Arc::new(Recorder::with_capacity(16));
        drop(rec.span("main"));
        let r2 = rec.clone();
        std::thread::spawn(move || drop(r2.span("worker")))
            .join()
            .unwrap();
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid);
    }
}
