//! Unified observability layer for the near-memory-transform SpMM stack.
//!
//! Three pieces, deliberately small and dependency-free:
//!
//! * **Spans** ([`Recorder`], [`Span`], [`span!`]) — hierarchical wall-clock
//!   regions with optional user counters, stored in a bounded ring buffer.
//! * **Metrics** ([`MetricRegistry`]) — named monotonic counters, gauges,
//!   and log₂-bucketed histograms. Names follow
//!   `<crate>.<component>.<name>` (e.g. `engine.pipeline.prefetch_miss`).
//! * **Export** ([`export`]) — a JSONL event stream, a Chrome trace-event
//!   file loadable in Perfetto / `chrome://tracing`, a folded-stack
//!   flamegraph ([`flamegraph_folded`]), and a Prometheus text-format
//!   metrics page ([`render_prometheus`]).
//! * **Profiling** ([`profile`], [`alloc`]) — [`Profiler`] folds the span
//!   tree into per-phase self-time, per-worker busy/idle, and farm
//!   concurrency; [`CountingAlloc`] optionally attributes allocation
//!   counts/bytes to spans.
//!
//! Instrumented code takes an [`ObsContext`] (cheaply cloneable); callers
//! that don't care pass [`ObsContext::disabled()`], which records nothing.

pub mod alloc;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod span;
pub(crate) mod sync;

pub use alloc::{AllocScope, CountingAlloc};
pub use export::{
    chrome_trace_json, flamegraph_folded, render_prometheus, sanitize_prometheus_name,
    write_chrome_trace, write_flamegraph, write_prometheus, JsonlExporter,
};
pub use metrics::{HistogramSnapshot, MetricRegistry, MetricsSnapshot};
pub use profile::{Phase, PhaseTotals, Profile, Profiler, WorkerStats};
pub use recorder::{
    build_bundle, diagnostics_installed, install_diagnostics, uninstall_diagnostics,
    write_bundle_file, write_bundle_now, DiagScope, DiagnosticsBundle, Event, EventSite,
    FlightRecorder,
};
pub use span::{Recorder, Span, SpanRecord};

use std::sync::Arc;

/// Bundle of a span recorder, a metric registry, and a flight recorder,
/// threaded through the planner, engine, and kernels.
#[derive(Clone)]
pub struct ObsContext {
    /// Span sink.
    pub recorder: Arc<Recorder>,
    /// Metric sink.
    pub metrics: Arc<MetricRegistry>,
    /// Black-box event log. Always on — even for
    /// [`ObsContext::disabled`] — so a crash in an uninstrumented run
    /// still leaves a diagnosable trail (see [`recorder`]).
    pub flight: Arc<FlightRecorder>,
}

impl ObsContext {
    /// A context that records spans (up to `capacity` retained) and metrics.
    pub fn with_capacity(capacity: usize) -> Self {
        ObsContext {
            recorder: Arc::new(Recorder::with_capacity(capacity)),
            metrics: Arc::new(MetricRegistry::new()),
            flight: Arc::new(FlightRecorder::new()),
        }
    }

    /// A context with the default span capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(Recorder::DEFAULT_CAPACITY)
    }

    /// A context that drops every span (metrics stay live — they are a
    /// handful of map slots, not a stream).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Whether the span recorder retains anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.capacity() > 0
    }

    /// Open a span named `name`; prefer the [`span!`] macro.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        self.recorder.span(name)
    }

    /// Publish the ring-buffer loss counters as gauges
    /// (`obs.dropped_spans`, `obs.dropped_events`) so silent data loss
    /// is visible on every metrics surface (Prometheus page, bundles).
    pub fn publish_dropped(&self) {
        self.metrics
            .gauge_set("obs.dropped_spans", self.recorder.dropped() as f64);
        self.metrics
            .gauge_set("obs.dropped_events", self.flight.dropped() as f64);
    }
}

impl Default for ObsContext {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Open a hierarchical span on an [`ObsContext`] (or anything with a
/// `.span(name)` method). The span closes when the guard drops:
///
/// ```
/// let obs = nmt_obs::ObsContext::enabled();
/// {
///     let mut s = nmt_obs::span!(obs, "plan");
///     s.counter("rows", 128.0);
/// } // recorded here
/// assert_eq!(obs.recorder.snapshot().len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
}
