//! Opt-in allocation counting for phase-attributed profiling.
//!
//! [`CountingAlloc`] wraps the system allocator and, when counting is
//! enabled, bumps two **thread-local** totals (allocation count and bytes
//! requested) on every `alloc`/`realloc`. A binary installs it once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: nmt_obs::CountingAlloc = nmt_obs::CountingAlloc;
//! ```
//!
//! Counting is off by default (a single relaxed atomic load on the alloc
//! path) and is switched on with [`enable_counting`]. Spans opened while
//! counting is on capture the thread's delta and attach it as
//! `alloc.count` / `alloc.bytes` counters (see `span.rs`), which the
//! [`crate::profile::Profiler`] then rolls up per phase.
//!
//! **Attribution caveat:** totals are per thread. Work a span hands to
//! other threads (e.g. rayon workers in the engine farm) is counted on
//! those workers' spans, not the parent's — per-phase rollups remain
//! correct because worker spans carry the same phase, but a single span's
//! numbers cover only its own thread.
//!
//! The thread-local counters are `const`-initialised `Cell`s: TLS init
//! must not allocate, or the allocator would recurse into itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Global gate: when false (the default) the allocator is a pure
/// pass-through to [`System`].
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Process-wide totals, bumped alongside the thread-locals. These see
/// allocations made on *worker* threads (the rayon shim runs parallel
/// work on freshly spawned scoped threads), which a caller-thread
/// [`AllocScope`] cannot — whole-parallel-region measurements like the
/// microbench alloc budgets diff these instead.
static PROC_COUNT: AtomicU64 = AtomicU64::new(0);
static PROC_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Turn allocation counting on or off process-wide. Returns the previous
/// state so callers can restore it.
pub fn enable_counting(on: bool) -> bool {
    // ordering: AcqRel — the gate flip publishes the measurement-window
    // boundary: a thread that observes `on` via the Acquire load in
    // `counting_enabled` must also observe everything the enabling
    // thread set up before the flip, and the returned previous state
    // orders restore-to-previous sequences.
    COUNTING.swap(on, Ordering::AcqRel)
}

/// Whether allocation counting is currently enabled.
pub fn counting_enabled() -> bool {
    // ordering: Acquire — pairs with the AcqRel swap in
    // `enable_counting`; callers begin alloc-measurement scopes only
    // after observing the gate, so the scope cannot start before the
    // window the enabler opened.
    COUNTING.load(Ordering::Acquire)
}

/// This thread's running totals since it first allocated with counting
/// on: `(allocation_count, bytes_requested)`. Monotonic; frees are not
/// subtracted — the profiler reports allocation *pressure*, not live heap.
pub fn thread_totals() -> (u64, u64) {
    (ALLOC_COUNT.with(Cell::get), ALLOC_BYTES.with(Cell::get))
}

/// Process-wide running totals across **all** threads since counting was
/// first enabled: `(allocation_count, bytes_requested)`. Monotonic, like
/// [`thread_totals`]. Use for measurements spanning a parallel region.
pub fn process_totals() -> (u64, u64) {
    (
        // ordering: monotone counter snapshots; callers diff totals
        // across a join/barrier, which supplies the happens-before.
        PROC_COUNT.load(Ordering::Relaxed),
        // ordering: monotone counter snapshot, as above.
        PROC_BYTES.load(Ordering::Relaxed),
    )
}

fn record(bytes: usize) {
    ALLOC_COUNT.with(|c| c.set(c.get() + 1));
    ALLOC_BYTES.with(|b| b.set(b.get() + bytes as u64));
    // ordering: monotone counter bumps whose values are never observed
    // here; cross-thread visibility rides the join/barrier the reader
    // diffs across.
    PROC_COUNT.fetch_add(1, Ordering::Relaxed);
    // ordering: monotone counter bump, as above.
    PROC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Counting wrapper around the system allocator. Zero-sized; install as
/// the `#[global_allocator]` in binaries that want `alloc.*` span
/// counters. Libraries and tests that never install it still link — all
/// public functions here degrade to "totals stay zero".
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System`, which upholds the
// `GlobalAlloc` contract; the bookkeeping touches only `Cell`s in this
// thread's TLS (const-init, so no allocation during TLS setup) and never
// allocates itself.
// The three gate loads below are deliberately `Relaxed` even though the
// gate is not a counter: this is the allocator hot path, hit on every
// allocation in the process, and an Acquire here would fence them all.
// The gate is advisory — an allocation racing the flip may or may not be
// counted, and the measurement scopes (`AllocScope`, process-total
// diffs) bracket their windows with the AcqRel swap plus a join/barrier,
// which supplies the real ordering.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // nmt-lint: allow(atomic-ordering) — advisory gate load on the
        //   allocator hot path; see the block comment above the impl
        if COUNTING.load(Ordering::Relaxed) {
            record(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // nmt-lint: allow(atomic-ordering) — advisory gate load on the
        //   allocator hot path; see the block comment above the impl
        if COUNTING.load(Ordering::Relaxed) {
            record(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // nmt-lint: allow(atomic-ordering) — advisory gate load on the
        //   allocator hot path; see the block comment above the impl
        if COUNTING.load(Ordering::Relaxed) {
            // Count the growth only: a shrinking realloc moves no new bytes.
            record(new_size.saturating_sub(layout.size()));
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// RAII guard measuring this thread's allocation delta over a scope.
/// Reads totals on construction and again in [`AllocScope::finish`];
/// yields `(count_delta, bytes_delta)`. Returns zeros when counting is
/// disabled or was enabled mid-scope.
pub struct AllocScope {
    start: Option<(u64, u64)>,
}

impl AllocScope {
    /// Begin measuring (no-op when counting is off).
    pub fn begin() -> Self {
        AllocScope {
            start: counting_enabled().then(thread_totals),
        }
    }

    /// Allocation `(count, bytes)` on this thread since `begin`.
    pub fn finish(&self) -> (u64, u64) {
        match self.start {
            Some((c0, b0)) => {
                let (c1, b1) = thread_totals();
                (c1.saturating_sub(c0), b1.saturating_sub(b0))
            }
            None => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the test binary does not install CountingAlloc as its global
    // allocator, so `record` is only reachable here by calling it
    // directly. That keeps these tests hermetic with respect to the rest
    // of the suite's allocations. Tests that flip the process-wide gate
    // serialize on GATE so the parallel runner can't interleave them.

    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn gate_toggles_and_restores() {
        let _g = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = enable_counting(true);
        assert!(counting_enabled());
        enable_counting(prev);
        assert_eq!(counting_enabled(), prev);
    }

    #[test]
    fn record_accumulates_per_thread() {
        let (c0, b0) = thread_totals();
        record(128);
        record(64);
        let (c1, b1) = thread_totals();
        assert_eq!(c1 - c0, 2);
        assert_eq!(b1 - b0, 192);
        // Another thread starts from its own zero.
        std::thread::spawn(|| {
            let (c, b) = thread_totals();
            assert_eq!((c, b), (0, 0));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn process_totals_see_other_threads() {
        let (c0, b0) = process_totals();
        record(16);
        std::thread::spawn(|| record(48)).join().unwrap();
        let (c1, b1) = process_totals();
        // Monotone (>=): concurrent tests may also call record.
        assert!(c1 - c0 >= 2, "worker-thread records must be visible");
        assert!(b1 - b0 >= 64);
    }

    #[test]
    fn scope_measures_delta_only_when_enabled() {
        let _g = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = enable_counting(false);
        let off = AllocScope::begin();
        record(32);
        assert_eq!(off.finish(), (0, 0));

        enable_counting(true);
        let on = AllocScope::begin();
        record(32);
        record(8);
        assert_eq!(on.finish(), (2, 40));
        enable_counting(prev);
    }
}
