//! Synchronization facade: std by default, the loom shim under
//! `--cfg loom` so the flight-recorder model (`tests/loom_recorder.rs`)
//! can explore lock interleavings. The shim mirrors std's mutex API —
//! const `new`, `LockResult`, poisoning — so callers are oblivious.
//!
//! Only the mutexes are switched. The crate's atomics stay on std even
//! under loom: they are either monotone counters (uid/tid allocation)
//! or the allocator gate, none of which carry cross-thread invariants
//! the ring model checks, and leaving them un-instrumented keeps the
//! model's interleaving space small enough for exhaustive exploration.

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;
#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
