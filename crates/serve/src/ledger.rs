//! The response ledger: the service's deterministic output artifact.
//!
//! A replayed trace produces one [`ServeLedger`]. Its deterministic
//! sections — config echo, admission counts, per-request response and
//! rejection rows — are pure functions of `(trace, broker config)` and
//! must serialize **byte-identically at any thread count**; CI replays
//! the same trace at 1 and 4 rayon threads and `cmp`s the files.
//!
//! Schedule-dependent measurements (actual cache hits vs. single-flight
//! waits, latency and allocation percentiles, pool occupancy) live in
//! the optional [`stats`](ServeLedger::stats) section, excluded from
//! [`canonical_json`](ServeLedger::canonical_json) and from the
//! [`gate`](ServeLedger::gate) — the same discipline as the bench
//! ledger's `perf: null` default. The *canonical* `plan_source` label on
//! each response row is schedule-invariant by construction: the first
//! occurrence of a fingerprint in dispatch order is `cold`, every later
//! one `cached`, regardless of which worker actually populated the
//! cache first.

use serde::{Deserialize, Serialize};

/// Bump when any serialized field changes meaning; the gate refuses to
/// compare ledgers across versions.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// The broker knobs a ledger was produced under. Thread count is
/// deliberately absent: it must not influence any gated byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfigEcho {
    /// Admission queue capacity (requests).
    pub queue_depth: u64,
    /// Deficit-round-robin quantum (requests of credit per pass).
    pub quantum: u64,
    /// Dispatches per tick once admitted.
    pub service_rate: u64,
    /// Plan-cache byte budget.
    pub cache_budget_bytes: u64,
    /// Strip/tile width plans are profiled and converted under.
    pub tile_w: u64,
    /// Tile height for B-stationary conversions.
    pub tile_h: u64,
}

/// One served request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseRow {
    /// Request id (rows are sorted by it).
    pub id: u64,
    /// Requesting tenant.
    pub tenant: String,
    /// Plan-cache key ([`MatrixFingerprint::key`] form).
    ///
    /// [`MatrixFingerprint::key`]: nmt::MatrixFingerprint::key
    pub key: String,
    /// Cached artifact kind: `dcsr` or `tiled-dcsr`.
    pub kind: String,
    /// Planner decision: `b-stationary` or `c-stationary`.
    pub choice: String,
    /// Canonical provenance: `cold` for the first dispatch of this key,
    /// `cached` after — a function of dispatch order, not of which
    /// worker won the single-flight race.
    pub plan_source: String,
    /// Position in the deterministic dispatch order.
    pub dispatch: u64,
    /// Simulated kernel time (deterministic; from [`KernelStats`]).
    ///
    /// [`KernelStats`]: nmt_sim::KernelStats
    pub sim_ns: u64,
    /// FNV-1a digest over the result matrix's f32 bit patterns.
    pub checksum: u64,
}

/// One rejected request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionRow {
    /// Request id.
    pub id: u64,
    /// Requesting tenant.
    pub tenant: String,
    /// Arrival tick at which admission failed.
    pub tick: u64,
    /// Typed reason: `queue-full` or `malformed: <detail>`.
    pub reason: String,
}

/// Deterministic admission/dispatch tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCounts {
    /// Requests in the trace.
    pub requests: u64,
    /// Requests admitted and served.
    pub admitted: u64,
    /// Typed rejections: bounded queue overflow.
    pub rejected_queue_full: u64,
    /// Typed rejections: unresolvable request spec.
    pub rejected_malformed: u64,
    /// Distinct fingerprints among served requests — exactly the number
    /// of plan computations any correct schedule performs.
    pub unique_plans: u64,
    /// Responses labelled `cached` (= `admitted - unique_plans`).
    pub cached_responses: u64,
    /// High-water mark of the admission queue.
    pub max_queue_depth: u64,
    /// Ticks the broker ran for (arrival span + drain).
    pub ticks: u64,
}

/// Schedule-dependent observability — **never gated, never canonical**.
/// `hits + computes` always equals `admitted` (a waiter that resolves
/// counts as a hit), and absent evictions `computes == unique_plans`;
/// both are schedule-invariant and the determinism test asserts exactly
/// that. `waits` counts wait *episodes* behind an in-flight compute and
/// genuinely depends on thread interleaving (0 on a serial replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Lookups that found a ready entry.
    pub cache_hits: u64,
    /// Lookups that found a miss and computed the plan.
    pub cache_computes: u64,
    /// Lookups that blocked on another worker's in-flight compute.
    pub cache_waits: u64,
    /// Entries evicted by the byte budget.
    pub cache_evictions: u64,
    /// Bytes resident in the cache after the run.
    pub resident_bytes: u64,
    /// Idle capacity shelved in the serve-side slice pools after the run.
    pub pool_idle_capacity: u64,
    /// Median wall-clock of hit-path requests (ns).
    pub hit_p50_ns: u64,
    /// Median wall-clock of miss-path (compute) requests (ns).
    pub miss_p50_ns: u64,
    /// Median allocation count on the hit path.
    pub hit_p50_allocs: u64,
    /// Median allocation count on the miss path.
    pub miss_p50_allocs: u64,
}

/// A full service replay: what `nmt-cli serve` writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLedger {
    /// [`SERVE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Broker knobs (no thread count).
    pub config: ServeConfigEcho,
    /// Deterministic tallies.
    pub counts: ServeCounts,
    /// Served requests, sorted by id.
    pub responses: Vec<ResponseRow>,
    /// Rejected requests, sorted by id.
    pub rejections: Vec<RejectionRow>,
    /// Schedule-dependent measurements; `None` unless `--stats` asked
    /// for them, and stripped by [`canonical_json`](Self::canonical_json)
    /// either way.
    pub stats: Option<ServeStats>,
}

impl ServeLedger {
    /// Pretty JSON, stats included when present.
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        let mut s = serde_json::to_string_pretty(self).expect("ledger serializes");
        s.push('\n');
        s
    }

    /// Parse a ledger back, refusing other schema versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let ledger: ServeLedger =
            serde_json::from_str(json).map_err(|e| format!("serve ledger parse: {e:?}"))?;
        if ledger.schema_version != SERVE_SCHEMA_VERSION {
            return Err(format!(
                "serve ledger schema v{} (this binary reads v{})",
                ledger.schema_version, SERVE_SCHEMA_VERSION
            ));
        }
        Ok(ledger)
    }

    /// The byte-compared form: stats stripped, so two replays of the same
    /// trace agree byte-for-byte whatever the thread count.
    pub fn canonical_json(&self) -> String {
        let mut canon = self.clone();
        canon.stats = None;
        canon.to_json()
    }

    /// Compare every deterministic section against `baseline`, reporting
    /// each divergence (row-level, field-level) rather than a bare
    /// boolean — the serve analogue of the bench ledger gate, with zero
    /// tolerance: replay determinism admits no drift.
    pub fn gate(&self, baseline: &ServeLedger) -> Result<(), Vec<String>> {
        let mut diffs = Vec::new();
        if self.schema_version != baseline.schema_version {
            diffs.push(format!(
                "schema version {} vs baseline {}",
                self.schema_version, baseline.schema_version
            ));
            return Err(diffs);
        }
        if self.config != baseline.config {
            diffs.push(format!(
                "config mismatch: {:?} vs baseline {:?}",
                self.config, baseline.config
            ));
        }
        if self.counts != baseline.counts {
            diffs.push(format!(
                "counts mismatch: {:?} vs baseline {:?}",
                self.counts, baseline.counts
            ));
        }
        diff_rows(
            "response",
            self.responses.len(),
            baseline.responses.len(),
            &mut diffs,
        );
        for (ours, theirs) in self.responses.iter().zip(&baseline.responses) {
            if ours != theirs {
                diffs.push(response_diff(ours, theirs));
            }
        }
        diff_rows(
            "rejection",
            self.rejections.len(),
            baseline.rejections.len(),
            &mut diffs,
        );
        for (ours, theirs) in self.rejections.iter().zip(&baseline.rejections) {
            if ours != theirs {
                diffs.push(format!(
                    "rejection id {}: {:?} vs baseline {:?}",
                    ours.id, ours, theirs
                ));
            }
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(diffs)
        }
    }

    /// Human-readable run summary for the CLI.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let c = &self.counts;
        out.push_str(&format!(
            "serve: {} requests — {} served ({} cold plans, {} cached), {} rejected ({} queue-full, {} malformed)\n",
            c.requests,
            c.admitted,
            c.unique_plans,
            c.cached_responses,
            c.rejected_queue_full + c.rejected_malformed,
            c.rejected_queue_full,
            c.rejected_malformed,
        ));
        out.push_str(&format!(
            "  queue high-water {} / {}, {} ticks, cache budget {} B\n",
            c.max_queue_depth, self.config.queue_depth, c.ticks, self.config.cache_budget_bytes
        ));
        if let Some(s) = &self.stats {
            out.push_str(&format!(
                "  cache: {} hits, {} computes, {} waits, {} evictions, {} B resident\n",
                s.cache_hits, s.cache_computes, s.cache_waits, s.cache_evictions, s.resident_bytes
            ));
            out.push_str(&format!(
                "  latency p50: hit {} ns / miss {} ns; allocs p50: hit {} / miss {}; pool idle {} B\n",
                s.hit_p50_ns, s.miss_p50_ns, s.hit_p50_allocs, s.miss_p50_allocs, s.pool_idle_capacity
            ));
        }
        out
    }
}

fn diff_rows(what: &str, ours: usize, theirs: usize, diffs: &mut Vec<String>) {
    if ours != theirs {
        diffs.push(format!("{what} rows: {ours} vs baseline {theirs}"));
    }
}

fn response_diff(ours: &ResponseRow, theirs: &ResponseRow) -> String {
    let mut fields = Vec::new();
    if ours.tenant != theirs.tenant {
        fields.push(format!("tenant {} vs {}", ours.tenant, theirs.tenant));
    }
    if ours.key != theirs.key {
        fields.push(format!("key {} vs {}", ours.key, theirs.key));
    }
    if ours.kind != theirs.kind {
        fields.push(format!("kind {} vs {}", ours.kind, theirs.kind));
    }
    if ours.choice != theirs.choice {
        fields.push(format!("choice {} vs {}", ours.choice, theirs.choice));
    }
    if ours.plan_source != theirs.plan_source {
        fields.push(format!(
            "plan_source {} vs {}",
            ours.plan_source, theirs.plan_source
        ));
    }
    if ours.dispatch != theirs.dispatch {
        fields.push(format!("dispatch {} vs {}", ours.dispatch, theirs.dispatch));
    }
    if ours.sim_ns != theirs.sim_ns {
        fields.push(format!("sim_ns {} vs {}", ours.sim_ns, theirs.sim_ns));
    }
    if ours.checksum != theirs.checksum {
        fields.push(format!(
            "checksum {:016x} vs {:016x}",
            ours.checksum, theirs.checksum
        ));
    }
    format!("response id {}: {}", ours.id, fields.join("; "))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn sample() -> ServeLedger {
        ServeLedger {
            schema_version: SERVE_SCHEMA_VERSION,
            config: ServeConfigEcho {
                queue_depth: 16,
                quantum: 2,
                service_rate: 4,
                cache_budget_bytes: 1 << 20,
                tile_w: 16,
                tile_h: 16,
            },
            counts: ServeCounts {
                requests: 3,
                admitted: 2,
                rejected_queue_full: 1,
                rejected_malformed: 0,
                unique_plans: 1,
                cached_responses: 1,
                max_queue_depth: 2,
                ticks: 3,
            },
            responses: vec![
                ResponseRow {
                    id: 0,
                    tenant: "t0".into(),
                    key: "fp-8x8-nnz5-w4-0000000000000001".into(),
                    kind: "dcsr".into(),
                    choice: "c-stationary".into(),
                    plan_source: "cold".into(),
                    dispatch: 0,
                    sim_ns: 100,
                    checksum: 7,
                },
                ResponseRow {
                    id: 2,
                    tenant: "t1".into(),
                    key: "fp-8x8-nnz5-w4-0000000000000001".into(),
                    kind: "dcsr".into(),
                    choice: "c-stationary".into(),
                    plan_source: "cached".into(),
                    dispatch: 1,
                    sim_ns: 100,
                    checksum: 7,
                },
            ],
            rejections: vec![RejectionRow {
                id: 1,
                tenant: "t1".into(),
                tick: 0,
                reason: "queue-full".into(),
            }],
            stats: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let ledger = sample();
        let parsed = ServeLedger::from_json(&ledger.to_json()).unwrap();
        assert_eq!(parsed, ledger);
    }

    #[test]
    fn wrong_schema_version_is_refused() {
        let mut ledger = sample();
        ledger.schema_version += 1;
        let err = ServeLedger::from_json(&ledger.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn canonical_json_strips_stats() {
        let mut ledger = sample();
        ledger.stats = Some(ServeStats {
            cache_hits: 1,
            cache_computes: 1,
            cache_waits: 0,
            cache_evictions: 0,
            resident_bytes: 64,
            pool_idle_capacity: 0,
            hit_p50_ns: 10,
            miss_p50_ns: 90,
            hit_p50_allocs: 0,
            miss_p50_allocs: 12,
        });
        let without = sample();
        assert_eq!(ledger.canonical_json(), without.canonical_json());
        assert_ne!(ledger.to_json(), without.to_json());
    }

    #[test]
    fn gate_accepts_stats_divergence_and_reports_field_diffs() {
        let mut ours = sample();
        ours.stats = Some(ServeStats {
            cache_hits: 99,
            cache_computes: 1,
            cache_waits: 0,
            cache_evictions: 0,
            resident_bytes: 0,
            pool_idle_capacity: 0,
            hit_p50_ns: 1,
            miss_p50_ns: 2,
            hit_p50_allocs: 0,
            miss_p50_allocs: 0,
        });
        assert!(ours.gate(&sample()).is_ok(), "stats must never gate");

        ours.responses[1].checksum = 8;
        ours.responses[1].plan_source = "cold".into();
        let diffs = ours.gate(&sample()).unwrap_err();
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("id 2"), "{diffs:?}");
        assert!(diffs[0].contains("plan_source"), "{diffs:?}");
        assert!(diffs[0].contains("checksum"), "{diffs:?}");
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let text = sample().render_summary();
        assert!(text.contains("3 requests"));
        assert!(text.contains("1 cold plans"));
        assert!(text.contains("queue-full"));
    }
}
