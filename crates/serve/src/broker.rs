//! The request broker: deterministic admission, parallel execution.
//!
//! [`serve_trace`] runs in two phases so the response ledger is a pure
//! function of `(trace, config)` no matter how many worker threads
//! execute it:
//!
//! * **Phase A — admission (sequential, pure).** Arrivals are folded in
//!   tick by tick. A request whose spec cannot resolve is rejected
//!   `malformed`; one that finds the bounded queue full is rejected
//!   `queue-full`. Admitted requests wait in per-tenant FIFOs, and each
//!   tick dispatches up to `service_rate` of them by deficit round-robin
//!   over tenants in name order — a burst from one tenant cannot starve
//!   another. The resulting *dispatch order* is the schedule every
//!   downstream artifact is keyed on.
//!
//! * **Phase B — execution (parallel).** Dispatched requests fan out
//!   over rayon. Each regenerates its operand, fingerprints it
//!   ([`MatrixFingerprint`]), and acquires the plan through the
//!   single-flight [`PlanCache`] — so N concurrent requests for one
//!   matrix cost one SSF profile + one conversion. The kernel then runs
//!   against the cached [`ConversionArtifact`] on a fresh simulated GPU;
//!   simulated time and the result checksum are schedule-invariant.
//!
//! Which request *actually* populated the cache is a race; ledgers
//! instead carry the canonical label (first dispatch of a fingerprint =
//! `cold`). The true hit/wait split, wall-clock latencies, and
//! allocation counts land in the optional stats section and in
//! `serve.*` metrics/flight events.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use nmt::{MatrixFingerprint, PlannerConfig, SpmmPlanner};
use nmt_engine::ConversionArtifact;
use nmt_kernels::{bstat_tiled_dcsr_offline, dcsrmm_row_per_warp};
use nmt_formats::SparseMatrix;
use nmt_matgen::{generators, random_dense};
use nmt_model::ssf::Choice;
use nmt_obs::{AllocScope, EventSite, ObsContext};
use nmt_sim::{Gpu, SimError};
use rayon::prelude::*;

use crate::cache::{Acquire, PlanCache};
use crate::ledger::{
    RejectionRow, ResponseRow, ServeConfigEcho, ServeCounts, ServeLedger, ServeStats,
    SERVE_SCHEMA_VERSION,
};
use crate::trace::Request;

/// Broker knobs. Everything here is echoed into the ledger except the
/// planner's GPU model (covered by the bench ledger's config echo) —
/// and, pointedly, *no* thread count.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Admission queue capacity across all tenants.
    pub queue_depth: usize,
    /// Deficit-round-robin credit added per tenant per pass (≥ 1).
    pub quantum: u64,
    /// Requests dispatched per tick (≥ 1).
    pub service_rate: usize,
    /// Plan-cache byte budget.
    pub cache_budget_bytes: u64,
    /// Planner configuration (tile geometry, GPU model, threshold).
    pub planner: PlannerConfig,
}

impl BrokerConfig {
    /// Small deterministic default for tests and smoke replays.
    pub fn test_small() -> Self {
        BrokerConfig {
            queue_depth: 32,
            quantum: 2,
            service_rate: 4,
            cache_budget_bytes: 4 << 20,
            planner: PlannerConfig::test_small(),
        }
    }

    /// The ledger's config echo.
    pub fn echo(&self) -> ServeConfigEcho {
        ServeConfigEcho {
            queue_depth: self.queue_depth as u64,
            quantum: self.quantum,
            service_rate: self.service_rate as u64,
            cache_budget_bytes: self.cache_budget_bytes,
            tile_w: self.planner.tile_w as u64,
            tile_h: self.planner.tile_h as u64,
        }
    }
}

/// Service-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The broker configuration cannot make progress.
    Config(String),
    /// A simulator error while executing an admitted request.
    Sim(String),
    /// A conversion error while building a plan artifact.
    Convert(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "serve config: {m}"),
            ServeError::Sim(m) => write!(f, "serve sim: {m}"),
            ServeError::Convert(m) => write!(f, "serve convert: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(format!("{e:?}"))
    }
}

/// What the plan cache stores per fingerprint: the decision and the
/// pre-converted operand it selects.
#[derive(Debug)]
pub struct CachedPlan {
    /// Heuristic decision for this matrix.
    pub choice: Choice,
    /// The converted operand the offline kernels execute against.
    pub artifact: ConversionArtifact,
}

/// Phase-A output: the deterministic schedule.
#[derive(Debug)]
struct Schedule {
    /// Admitted requests in dispatch order.
    dispatched: Vec<Request>,
    /// Rejections, in arrival order.
    rejections: Vec<RejectionRow>,
    /// Queue high-water mark.
    max_queue_depth: usize,
    /// Ticks simulated (arrival span + drain).
    ticks: u64,
}

/// Phase A: fold arrivals through the bounded queue and the DRR
/// dispatcher. Pure: no clocks, no threads, BTreeMap order throughout.
fn schedule(trace: &[Request], config: &BrokerConfig, obs: &ObsContext) -> Schedule {
    let mut arrivals: Vec<&Request> = trace.iter().collect();
    arrivals.sort_by_key(|r| (r.tick, r.id));

    let mut queues: BTreeMap<String, VecDeque<Request>> = BTreeMap::new();
    let mut deficits: BTreeMap<String, u64> = BTreeMap::new();
    let mut queued = 0usize;
    let mut next = 0usize;
    let mut tick = 0u64;
    let mut out = Schedule {
        dispatched: Vec::with_capacity(trace.len()),
        rejections: Vec::new(),
        max_queue_depth: 0,
        ticks: 0,
    };
    let last_arrival = arrivals.last().map_or(0, |r| r.tick);

    while tick <= last_arrival || queued > 0 {
        while next < arrivals.len() && arrivals[next].tick <= tick {
            let req = arrivals[next];
            next += 1;
            if let Err(detail) = req.desc() {
                obs.flight
                    .record(EventSite::ServeAdmission, 2, req.id, queued as u64);
                out.rejections.push(RejectionRow {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    tick,
                    reason: format!("malformed: {detail}"),
                });
            } else if queued == config.queue_depth {
                obs.flight
                    .record(EventSite::ServeAdmission, 1, req.id, queued as u64);
                out.rejections.push(RejectionRow {
                    id: req.id,
                    tenant: req.tenant.clone(),
                    tick,
                    reason: "queue-full".into(),
                });
            } else {
                queued += 1;
                obs.flight
                    .record(EventSite::ServeAdmission, 0, req.id, queued as u64);
                queues
                    .entry(req.tenant.clone())
                    .or_default()
                    .push_back(req.clone());
            }
        }
        out.max_queue_depth = out.max_queue_depth.max(queued);

        // Deficit round-robin over tenants in name order. Each pass
        // grants every backlogged tenant `quantum` credits; an idle
        // tenant forfeits its balance (classic DRR, no credit hoarding).
        let mut slots = config.service_rate;
        while slots > 0 && queued > 0 {
            let mut progressed = false;
            for (tenant, q) in queues.iter_mut() {
                if q.is_empty() {
                    deficits.insert(tenant.clone(), 0);
                    continue;
                }
                let credit = deficits.entry(tenant.clone()).or_insert(0);
                *credit += config.quantum;
                while *credit >= 1 && slots > 0 {
                    let Some(req) = q.pop_front() else { break };
                    *credit -= 1;
                    slots -= 1;
                    queued -= 1;
                    progressed = true;
                    out.dispatched.push(req);
                }
                if slots == 0 {
                    break;
                }
            }
            if !progressed {
                break;
            }
        }

        out.ticks += 1;
        tick += 1;
    }
    out
}

/// Phase-B output for one request (pre-labelling).
struct Outcome {
    request: Request,
    dispatch: u64,
    key: String,
    kind: &'static str,
    choice: Choice,
    sim_ns: u64,
    checksum: u64,
    how: Acquire,
    acquire_ns: u64,
    acquire_allocs: u64,
    evicted: u64,
}

/// FNV-1a over the result matrix's f32 bit patterns.
fn checksum_f32(values: &[f32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Execute one dispatched request against the shared plan cache.
fn execute_one(
    dispatch: usize,
    req: &Request,
    planner: &SpmmPlanner,
    cache: &PlanCache<CachedPlan>,
    obs: &ObsContext,
) -> Result<Outcome, ServeError> {
    let cfg = planner.config();
    let desc = req
        .desc()
        .map_err(|m| ServeError::Config(format!("dispatched malformed request: {m}")))?;
    let a = generators::generate(&desc);
    let fp = MatrixFingerprint::of(&a, cfg.tile_w);
    let key = fp.key();

    let t0 = obs.recorder.now_ns();
    let scope = AllocScope::begin();
    let lookup = cache.get_or_compute(&key, || -> Result<(CachedPlan, u64), ServeError> {
        let (_profile, choice) = planner.plan(&a);
        let artifact = match choice {
            Choice::BStationary => ConversionArtifact::tiled(&a, cfg.tile_w, cfg.tile_h)
                .map_err(|e| ServeError::Convert(format!("{e:?}")))?,
            Choice::CStationary => ConversionArtifact::row_major(&a),
        };
        let bytes = artifact.storage_bytes() as u64;
        Ok((CachedPlan { choice, artifact }, bytes))
    })?;
    let (acquire_allocs, _bytes) = scope.finish();
    let acquire_ns = obs.recorder.now_ns().saturating_sub(t0);

    // Evicted artifacts whose last handle just dropped go back to the
    // engine pools; ones still pinned by a concurrent request are freed
    // by that request's Arc instead.
    let mut evicted = 0u64;
    for victim in lookup.evicted {
        evicted += 1;
        if let Ok(plan) = Arc::try_unwrap(victim) {
            plan.artifact.recycle();
        }
    }
    let cache_code = match lookup.how {
        Acquire::Hit => 0,
        Acquire::Computed => 1,
        Acquire::Waited => 2,
    };
    obs.flight.record(
        EventSite::ServePlanCache,
        cache_code,
        req.id,
        cache.resident_bytes(),
    );

    let plan = lookup.value;
    let b = random_dense(a.shape().ncols, req.k as usize, req.b_seed);
    let mut gpu = Gpu::new(cfg.gpu.clone())?;
    let run = match &plan.artifact {
        ConversionArtifact::RowMajor(d) => dcsrmm_row_per_warp(&mut gpu, d, &b)?,
        ConversionArtifact::Tiled(t) => bstat_tiled_dcsr_offline(&mut gpu, t, &b)?,
    };
    let sim_ns = run.stats.total_ns as u64;
    obs.flight.record(
        EventSite::ServeResponse,
        u32::from(lookup.how != Acquire::Computed),
        req.id,
        sim_ns,
    );

    Ok(Outcome {
        request: req.clone(),
        dispatch: dispatch as u64,
        key,
        kind: plan.artifact.kind(),
        choice: plan.choice,
        sim_ns,
        checksum: checksum_f32(run.c.as_slice()),
        how: lookup.how,
        acquire_ns,
        acquire_allocs,
        evicted,
    })
}

/// Median of an unsorted sample (0 when empty).
fn median(mut xs: Vec<u64>) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Replay `trace` through the broker and produce the response ledger.
///
/// With `with_stats`, the schedule-dependent measurement section is
/// attached (and the same numbers are published as `serve.*` metrics
/// either way); without it the ledger is already in canonical form.
pub fn serve_trace(
    trace: &[Request],
    config: &BrokerConfig,
    obs: &ObsContext,
    with_stats: bool,
) -> Result<ServeLedger, ServeError> {
    if config.quantum == 0 {
        return Err(ServeError::Config("quantum must be ≥ 1".into()));
    }
    if config.service_rate == 0 {
        return Err(ServeError::Config("service_rate must be ≥ 1".into()));
    }
    if config.queue_depth == 0 {
        return Err(ServeError::Config("queue_depth must be ≥ 1".into()));
    }

    let plan = schedule(trace, config, obs);
    let planner = SpmmPlanner::new(config.planner.clone());
    let cache: PlanCache<CachedPlan> = PlanCache::new(config.cache_budget_bytes);

    let work: Vec<(usize, Request)> = plan.dispatched.into_iter().enumerate().collect();
    let outcomes: Vec<Result<Outcome, ServeError>> = work
        .into_par_iter()
        .map(|(dispatch, req)| execute_one(dispatch, &req, &planner, &cache, obs))
        .collect();
    let mut done = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        done.push(outcome?);
    }

    // Canonical provenance: first dispatch of each fingerprint is the
    // cold one, independent of which worker won the single-flight race.
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    let mut responses = Vec::with_capacity(done.len());
    for o in &done {
        let cold = seen.insert(o.key.clone(), ()).is_none();
        responses.push(ResponseRow {
            id: o.request.id,
            tenant: o.request.tenant.clone(),
            key: o.key.clone(),
            kind: o.kind.to_string(),
            choice: match o.choice {
                Choice::BStationary => "b-stationary".to_string(),
                Choice::CStationary => "c-stationary".to_string(),
            },
            plan_source: if cold { "cold" } else { "cached" }.to_string(),
            dispatch: o.dispatch,
            sim_ns: o.sim_ns,
            checksum: o.checksum,
        });
    }
    responses.sort_by_key(|r| r.id);
    let mut rejections = plan.rejections;
    rejections.sort_by_key(|r| r.id);

    let admitted = done.len() as u64;
    let unique_plans = seen.len() as u64;
    let rejected_queue_full = rejections
        .iter()
        .filter(|r| r.reason == "queue-full")
        .count() as u64;
    let rejected_malformed = rejections.len() as u64 - rejected_queue_full;
    let counts = ServeCounts {
        requests: trace.len() as u64,
        admitted,
        rejected_queue_full,
        rejected_malformed,
        unique_plans,
        cached_responses: admitted - unique_plans,
        max_queue_depth: plan.max_queue_depth as u64,
        ticks: plan.ticks,
    };

    let cache_stats = cache.stats();
    let hit_ns: Vec<u64> = done
        .iter()
        .filter(|o| o.how != Acquire::Computed)
        .map(|o| o.acquire_ns)
        .collect();
    let miss_ns: Vec<u64> = done
        .iter()
        .filter(|o| o.how == Acquire::Computed)
        .map(|o| o.acquire_ns)
        .collect();
    let hit_allocs: Vec<u64> = done
        .iter()
        .filter(|o| o.how != Acquire::Computed)
        .map(|o| o.acquire_allocs)
        .collect();
    let miss_allocs: Vec<u64> = done
        .iter()
        .filter(|o| o.how == Acquire::Computed)
        .map(|o| o.acquire_allocs)
        .collect();
    let stats = ServeStats {
        cache_hits: cache_stats.hits,
        cache_computes: cache_stats.computes,
        cache_waits: cache_stats.waits,
        cache_evictions: done.iter().map(|o| o.evicted).sum(),
        resident_bytes: cache.resident_bytes(),
        pool_idle_capacity: nmt_engine::mem::pool_idle_capacity() as u64,
        hit_p50_ns: median(hit_ns),
        miss_p50_ns: median(miss_ns),
        hit_p50_allocs: median(hit_allocs),
        miss_p50_allocs: median(miss_allocs),
    };

    let m = &obs.metrics;
    m.counter_add("serve.requests", counts.requests);
    m.counter_add("serve.admitted", counts.admitted);
    m.counter_add("serve.rejected.queue_full", counts.rejected_queue_full);
    m.counter_add("serve.rejected.malformed", counts.rejected_malformed);
    m.counter_add("serve.cache.hits", stats.cache_hits);
    m.counter_add("serve.cache.computes", stats.cache_computes);
    m.counter_add("serve.cache.waits", stats.cache_waits);
    m.counter_add("serve.cache.evictions", stats.cache_evictions);
    m.gauge_set("serve.cache.resident_bytes", stats.resident_bytes as f64);
    m.gauge_set("serve.queue.high_water", counts.max_queue_depth as f64);
    for o in &done {
        let name = if o.how == Acquire::Computed {
            "serve.latency.miss_ns"
        } else {
            "serve.latency.hit_ns"
        };
        m.histogram_record(name, o.acquire_ns);
    }

    Ok(ServeLedger {
        schema_version: SERVE_SCHEMA_VERSION,
        config: config.echo(),
        counts,
        responses,
        rejections,
        stats: with_stats.then_some(stats),
    })
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::trace::{synth_trace, SynthSpec};

    fn obs() -> ObsContext {
        ObsContext::disabled()
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let trace = synth_trace(&SynthSpec::quick(1));
        let mut cfg = BrokerConfig::test_small();
        cfg.quantum = 0;
        assert!(matches!(
            serve_trace(&trace, &cfg, &obs(), false),
            Err(ServeError::Config(_))
        ));
        let mut cfg = BrokerConfig::test_small();
        cfg.service_rate = 0;
        assert!(serve_trace(&trace, &cfg, &obs(), false).is_err());
    }

    #[test]
    fn replay_serves_every_admissible_request() {
        let trace = synth_trace(&SynthSpec::quick(42));
        let ledger = serve_trace(&trace, &BrokerConfig::test_small(), &obs(), true).unwrap();
        let c = &ledger.counts;
        assert_eq!(c.requests, trace.len() as u64);
        assert_eq!(c.admitted + c.rejected_queue_full + c.rejected_malformed, c.requests);
        assert_eq!(ledger.responses.len() as u64, c.admitted);
        // The synth pool guarantees repeats, so the cache must serve
        // strictly fewer cold plans than requests…
        assert!(c.unique_plans < c.admitted);
        assert_eq!(c.cached_responses, c.admitted - c.unique_plans);
        // …and single-flight makes computes == unique fingerprints.
        let stats = ledger.stats.as_ref().unwrap();
        assert_eq!(stats.cache_computes, c.unique_plans);
        // A waiter that resolves counts as a hit, so hits + computes
        // covers every admitted request on any schedule.
        assert_eq!(stats.cache_hits + stats.cache_computes, c.admitted);
    }

    #[test]
    fn canonical_labels_follow_dispatch_order() {
        let trace = synth_trace(&SynthSpec::quick(9));
        let ledger = serve_trace(&trace, &BrokerConfig::test_small(), &obs(), false).unwrap();
        let mut rows = ledger.responses.clone();
        rows.sort_by_key(|r| r.dispatch);
        let mut seen = std::collections::BTreeSet::new();
        for row in rows {
            let expect = if seen.insert(row.key.clone()) { "cold" } else { "cached" };
            assert_eq!(row.plan_source, expect, "row id {}", row.id);
        }
    }

    #[test]
    fn identical_matrices_share_checksum_and_sim_time() {
        let trace = synth_trace(&SynthSpec::quick(21));
        let ledger = serve_trace(&trace, &BrokerConfig::test_small(), &obs(), false).unwrap();
        let mut by_key: BTreeMap<(String, u64, u64), (u64, u64)> = BTreeMap::new();
        for row in &ledger.responses {
            let req = trace.iter().find(|r| r.id == row.id).unwrap();
            let spec = (row.key.clone(), req.k, req.b_seed);
            let val = (row.checksum, row.sim_ns);
            match by_key.get(&spec) {
                Some(prev) => assert_eq!(
                    *prev, val,
                    "same (matrix, B) must produce identical results on hit and cold paths"
                ),
                None => {
                    by_key.insert(spec, val);
                }
            }
        }
    }

    #[test]
    fn tiny_queue_rejects_with_typed_reason() {
        let trace = synth_trace(&SynthSpec::quick(5));
        let mut cfg = BrokerConfig::test_small();
        cfg.queue_depth = 1;
        cfg.service_rate = 1;
        let ledger = serve_trace(&trace, &cfg, &obs(), false).unwrap();
        assert!(ledger.counts.rejected_queue_full > 0);
        assert!(ledger
            .rejections
            .iter()
            .all(|r| r.reason == "queue-full" || r.reason.starts_with("malformed")));
    }

    #[test]
    fn malformed_requests_are_rejected_not_fatal() {
        let mut trace = synth_trace(&SynthSpec::quick(6));
        trace[0].gen = "mystery".into();
        trace[3].density = 0.0;
        let ledger = serve_trace(&trace, &BrokerConfig::test_small(), &obs(), false).unwrap();
        assert_eq!(ledger.counts.rejected_malformed, 2);
        let reasons: Vec<&str> = ledger
            .rejections
            .iter()
            .filter(|r| r.reason.starts_with("malformed"))
            .map(|r| r.reason.as_str())
            .collect();
        assert_eq!(reasons.len(), 2);
    }

    #[test]
    fn drr_interleaves_tenants_fairly() {
        // Two tenants, one flooding: with quantum 1 the dispatch order
        // must alternate while both are backlogged.
        let mut trace = Vec::new();
        for i in 0..6u64 {
            trace.push(Request {
                id: i,
                tick: 0,
                tenant: if i < 5 { "flood".into() } else { "meek".into() },
                gen: "uniform".into(),
                n: 32,
                density: 0.05,
                exponent: 0.0,
                seed: 1 + (i < 5) as u64, // flood and meek use different matrices
                k: 4,
                b_seed: 9,
            });
        }
        let mut cfg = BrokerConfig::test_small();
        cfg.quantum = 1;
        cfg.service_rate = 2;
        let ledger = serve_trace(&trace, &cfg, &obs(), false).unwrap();
        let mut rows = ledger.responses.clone();
        rows.sort_by_key(|r| r.dispatch);
        // First two dispatches: one from each tenant (name order: flood
        // first), not two from the flooder.
        assert_eq!(rows[0].tenant, "flood");
        assert_eq!(rows[1].tenant, "meek");
    }

    #[test]
    fn budgeted_cache_evicts_and_still_answers_correctly() {
        let trace = synth_trace(&SynthSpec::quick(31));
        let mut cfg = BrokerConfig::test_small();
        cfg.cache_budget_bytes = 1; // everything evicts after insert
        let tight = serve_trace(&trace, &cfg, &obs(), true).unwrap();
        let roomy =
            serve_trace(&trace, &BrokerConfig::test_small(), &obs(), true).unwrap();
        assert!(tight.stats.as_ref().unwrap().cache_evictions > 0);
        // Eviction pressure must not change any deterministic byte.
        assert_eq!(
            tight.responses.iter().map(|r| (r.id, r.checksum, r.sim_ns)).collect::<Vec<_>>(),
            roomy.responses.iter().map(|r| (r.id, r.checksum, r.sim_ns)).collect::<Vec<_>>(),
        );
    }
}
