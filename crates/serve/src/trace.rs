//! Request traces: the service's replayable input.
//!
//! A trace is a JSONL file, one [`Request`] per line, sorted by logical
//! arrival `(tick, id)`. Requests name their matrix by *generator spec*
//! (kind + dimension + seed), not by payload: the matgen suite is
//! deterministic, so the spec IS the matrix, the trace stays tiny, and a
//! replay regenerates bit-identical operands on any machine — the same
//! discipline the bench suite uses. Production traffic would carry real
//! matrices; the fingerprint layer is payload-based either way.
//!
//! [`synth_trace`] builds seeded schedules whose matrix pool is smaller
//! than the request count, so replayed workloads exercise the plan cache
//! with a controlled repeat ratio (the acceptance workload keeps ≥ 50%
//! repeats).

use nmt_matgen::{GenKind, MatrixDesc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One SpMM job: `(matrix spec, B seed, k, tenant)` at a logical arrival
/// tick. `gen`/`n`/`density`/`exponent`/`seed` pin the sparse operand;
/// `k`/`b_seed` pin the dense one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique request id; response rows are keyed and sorted by it.
    pub id: u64,
    /// Logical arrival tick (admission is resolved tick by tick).
    pub tick: u64,
    /// Tenant the deficit-round-robin scheduler is fair across.
    pub tenant: String,
    /// Generator kind: `uniform`, `zipf-rows`, `row-bursts`, or `banded`.
    pub gen: String,
    /// Matrix dimension (square, like the suite).
    pub n: u64,
    /// Generator density / fill knob.
    pub density: f64,
    /// Second generator knob: Zipf exponent (`zipf-rows`), burst length
    /// (`row-bursts`), band half-width (`banded`); ignored by `uniform`.
    pub exponent: f64,
    /// Matrix generator seed.
    pub seed: u64,
    /// Dense-operand width (columns of B).
    pub k: u64,
    /// Dense-operand seed.
    pub b_seed: u64,
}

impl Request {
    /// Resolve the generator spec into a [`MatrixDesc`], or explain why
    /// it is malformed (the broker's typed `Malformed` rejection).
    pub fn desc(&self) -> Result<MatrixDesc, String> {
        if self.n == 0 {
            return Err("matrix dimension must be > 0".into());
        }
        if self.k == 0 {
            return Err("dense width k must be > 0".into());
        }
        if !(self.density > 0.0 && self.density <= 1.0) {
            return Err(format!("density {} outside (0, 1]", self.density));
        }
        let kind = match self.gen.as_str() {
            "uniform" => GenKind::Uniform {
                density: self.density,
            },
            "zipf-rows" => GenKind::ZipfRows {
                density: self.density,
                exponent: self.exponent,
            },
            "row-bursts" => GenKind::RowBursts {
                density: self.density,
                burst_len: (self.exponent as usize).max(1),
            },
            "banded" => GenKind::Banded {
                bandwidth: (self.exponent as usize).max(1),
                fill: self.density,
            },
            other => return Err(format!("unknown generator kind `{other}`")),
        };
        let name = format!("{}-n{}-s{}", self.gen, self.n, self.seed);
        Ok(MatrixDesc::new(name, self.n as usize, kind, self.seed))
    }
}

/// Serialize a trace as JSONL (one request per line, trailing newline).
pub fn to_jsonl(trace: &[Request]) -> String {
    let mut out = String::new();
    for req in trace {
        // nmt-lint: allow(panic) — named-struct serialization is total
        out.push_str(&serde_json::to_string(req).expect("request serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace. Blank lines are skipped; a malformed line is an
/// error naming its line number (traces are inputs, so a torn line means
/// the trace is wrong — unlike history files, it must not be papered
/// over). The result is re-sorted by `(tick, id)` and rejects duplicate
/// ids, so hand-edited traces cannot smuggle in ambiguous schedules.
pub fn parse_jsonl(text: &str) -> Result<Vec<Request>, String> {
    let mut trace = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let req: Request = serde_json::from_str(line)
            .map_err(|e| format!("trace line {}: {e:?}", lineno + 1))?;
        trace.push(req);
    }
    trace.sort_by_key(|r| (r.tick, r.id));
    for pair in trace.windows(2) {
        if let [left, right] = pair {
            if left.id == right.id {
                return Err(format!("duplicate request id {}", left.id));
            }
        }
    }
    Ok(trace)
}

/// Knobs for [`synth_trace`].
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Schedule seed: everything below is a pure function of it.
    pub seed: u64,
    /// Total requests.
    pub requests: usize,
    /// Distinct matrices in the pool (`requests / unique` ≈ repeat
    /// factor; keep `unique <= requests / 2` for the ≥ 50%-repeat
    /// acceptance workload).
    pub unique_matrices: usize,
    /// Tenants `t0 .. t{tenants-1}`.
    pub tenants: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Dense-operand width.
    pub k: usize,
    /// Arrivals per tick (burstiness; admission queues fill when this
    /// exceeds the broker's service rate).
    pub arrivals_per_tick: usize,
}

impl SynthSpec {
    /// A small, cache-heavy default: 48 requests over 8 matrices
    /// (6× repeat factor), 3 tenants, 4 arrivals per tick.
    pub fn quick(seed: u64) -> Self {
        SynthSpec {
            seed,
            requests: 48,
            unique_matrices: 8,
            tenants: 3,
            n: 96,
            k: 8,
            arrivals_per_tick: 4,
        }
    }
}

/// Generate a seeded request schedule over a fixed matrix pool. The
/// pool cycles through the generator kinds with per-matrix densities
/// and seeds derived from the pool index, so fingerprints are distinct;
/// request→matrix assignment, tenants, and B seeds come from one
/// `StdRng`, so the whole trace is a pure function of `spec`.
pub fn synth_trace(spec: &SynthSpec) -> Vec<Request> {
    let kinds = ["uniform", "zipf-rows", "row-bursts", "banded"];
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let unique = spec.unique_matrices.max(1);
    let per_tick = spec.arrivals_per_tick.max(1);
    (0..spec.requests)
        .map(|i| {
            let m = rng.random_range(0..unique);
            let gen = kinds.get(m % kinds.len()).copied().unwrap_or("uniform");
            let (density, exponent) = match gen {
                "uniform" => (0.02 + 0.01 * (m / kinds.len()) as f64, 0.0),
                "zipf-rows" => (0.02, 1.1 + 0.2 * (m / kinds.len()) as f64),
                "row-bursts" => (0.03, 4.0),
                _ => (0.5, 3.0 + (m / kinds.len()) as f64),
            };
            Request {
                id: i as u64,
                tick: (i / per_tick) as u64,
                tenant: format!("t{}", rng.random_range(0..spec.tenants.max(1))),
                gen: gen.to_string(),
                n: spec.n as u64,
                density,
                exponent,
                seed: spec.seed ^ (0x9e37_79b9 + m as u64),
                k: spec.k as u64,
                b_seed: spec.seed ^ (0x7f4a_7c15 + m as u64),
            }
        })
        .collect()
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn synth_is_a_pure_function_of_the_spec() {
        let a = synth_trace(&SynthSpec::quick(11));
        let b = synth_trace(&SynthSpec::quick(11));
        assert_eq!(a, b);
        let c = synth_trace(&SynthSpec::quick(12));
        assert_ne!(a, c, "different seeds must shuffle the schedule");
    }

    #[test]
    fn synth_meets_the_repeat_ratio() {
        let spec = SynthSpec::quick(7);
        let trace = synth_trace(&spec);
        assert_eq!(trace.len(), spec.requests);
        let mut seeds: Vec<u64> = trace.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(seeds.len() <= spec.unique_matrices);
        assert!(
            seeds.len() * 2 <= spec.requests,
            "≥ 50% of requests must repeat a pooled matrix"
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = synth_trace(&SynthSpec::quick(3));
        let text = to_jsonl(&trace);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parse_rejects_torn_lines_and_duplicate_ids() {
        assert!(parse_jsonl("{not json}\n").is_err());
        let mut trace = synth_trace(&SynthSpec::quick(3));
        trace[1].id = trace[0].id;
        let err = parse_jsonl(&to_jsonl(&trace)).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn descs_resolve_and_generate() {
        let trace = synth_trace(&SynthSpec::quick(5));
        for req in &trace {
            let desc = req.desc().expect("synth specs are well-formed");
            let a = nmt_matgen::generators::generate(&desc);
            assert_eq!(nmt_formats::SparseMatrix::shape(&a).nrows, req.n as usize);
        }
    }

    #[test]
    fn malformed_specs_are_typed() {
        let mut req = synth_trace(&SynthSpec::quick(5)).remove(0);
        req.gen = "mystery".into();
        assert!(req.desc().unwrap_err().contains("unknown generator"));
        req.gen = "uniform".into();
        req.density = 0.0;
        assert!(req.desc().unwrap_err().contains("density"));
    }
}
