//! The single-flight plan cache: content-keyed, LRU + byte-budget.
//!
//! [`PlanCache`] is generic over the cached value so the concurrency
//! machinery is checkable in isolation (the loom model caches plain
//! integers; the broker caches [`CachedPlan`](crate::broker::CachedPlan)s
//! whose artifacts own real conversions). The contracts, on every
//! interleaving:
//!
//! * **Single-flight:** concurrent [`get_or_compute`] calls for one key
//!   run the compute closure exactly once — one caller becomes the
//!   *leader* and inserts an in-flight marker; everyone else blocks on a
//!   condvar and receives the leader's value. No thundering herd of
//!   redundant conversions.
//! * **Leader failure is not fatal:** if the leader's closure returns an
//!   error or panics, the in-flight marker is removed and the waiters
//!   are woken; one of them becomes the new leader and retries. A panic
//!   can therefore at most double the compute count for that key, never
//!   deadlock the followers.
//! * **Poison recovery:** every lock acquisition recovers a poisoned
//!   mutex by taking the inner value (cache state is valid at every
//!   step; a poisoned lock only means some other caller unwound).
//! * **Bounded residency:** `Ready` entries are charged their byte cost;
//!   when an insert pushes residency over the budget, least-recently-used
//!   entries are evicted (never in-flight markers, never the entry just
//!   inserted — the budget is soft by at most the newest entry). Evicted
//!   values are handed back to the caller so conversion buffers can be
//!   recycled into the `nmt-mem` pools.
//!
//! Hit/miss/wait counters are *observability*: `waits` (and the
//! hit-vs-wait split) depend on the schedule, but `misses == computes`
//! and `hits + waits`-style totals are schedule-invariant absent
//! evictions and panics — the serve determinism suite pins this.
//!
//! [`get_or_compute`]: PlanCache::get_or_compute

use std::collections::BTreeMap;
use std::sync::Arc;

// Sync facade: std by default, the loom shim under `--cfg loom` so the
// model in `tests/loom_cache.rs` explores every interleaving of the
// lock/condvar operations below.
#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard};

/// Reuse counters for one cache. Totals are exact on every schedule;
/// the hit-vs-wait split is schedule-dependent (observability only,
/// never serialized into gated artifacts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a `Ready` entry without blocking.
    pub hits: u64,
    /// Lookups that found nothing and became the compute leader.
    pub misses: u64,
    /// Wait episodes behind another caller's in-flight compute.
    pub waits: u64,
    /// Compute closures that ran to completion and were inserted.
    pub computes: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
}

/// How a [`PlanCache::get_or_compute`] call obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// Answered from cache without computing.
    Hit,
    /// This caller ran the compute closure (miss leader).
    Computed,
    /// Blocked behind an in-flight compute, then received its result.
    Waited,
}

/// A resolved lookup: the shared value, how it was obtained, and any
/// entries the byte budget evicted during the insert (callers recycle
/// the ones they can reclaim exclusively).
#[derive(Debug)]
pub struct Lookup<V> {
    /// The cached (or just-computed) value.
    pub value: Arc<V>,
    /// How this caller obtained it.
    pub how: Acquire,
    /// Entries evicted to make room, oldest first.
    pub evicted: Vec<Arc<V>>,
}

/// One resident entry.
#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    /// Monotone use tick; smallest = least recently used.
    last_use: u64,
}

/// A key's slot: either being computed or resident.
#[derive(Debug)]
enum Slot<V> {
    /// A leader is computing this key outside the lock.
    InFlight,
    /// Resident value.
    Ready(Entry<V>),
}

#[derive(Debug)]
struct State<V> {
    slots: BTreeMap<String, Slot<V>>,
    /// Monotone LRU clock.
    tick: u64,
    /// Bytes charged for `Ready` entries.
    resident_bytes: u64,
    stats: CacheStats,
}

/// Content-keyed single-flight cache with LRU + byte-budget eviction.
/// See the module docs for the concurrency contracts.
#[derive(Debug)]
pub struct PlanCache<V> {
    budget_bytes: u64,
    state: Mutex<State<V>>,
    ready: Condvar,
}

/// Removes the leader's in-flight marker and wakes waiters if the
/// compute closure unwinds or errors — otherwise followers would block
/// forever on a key nobody is computing.
struct InFlightGuard<'a, V> {
    cache: &'a PlanCache<V>,
    key: &'a str,
    armed: bool,
}

impl<V> Drop for InFlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = self.cache.lock();
        if matches!(st.slots.get(self.key), Some(Slot::InFlight)) {
            st.slots.remove(self.key);
        }
        drop(st);
        self.cache.ready.notify_all();
    }
}

impl<V> PlanCache<V> {
    /// An empty cache charging `Ready` entries against `budget_bytes`.
    pub fn new(budget_bytes: u64) -> Self {
        PlanCache {
            budget_bytes,
            state: Mutex::new(State {
                slots: BTreeMap::new(),
                tick: 0,
                resident_bytes: 0,
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Recover-on-poison lock (see module docs).
    fn lock(&self) -> MutexGuard<'_, State<V>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up `key`; on a miss, run `compute` (exactly once across all
    /// concurrent callers of this key) and insert its value, charging
    /// `bytes` against the budget. `compute` returns `(value, bytes)`.
    ///
    /// Runs the closure *outside* the cache lock: other keys proceed
    /// concurrently; same-key callers block on the condvar.
    pub fn get_or_compute<E>(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<(V, u64), E>,
    ) -> Result<Lookup<V>, E> {
        let mut waited = false;
        let mut st = self.lock();
        loop {
            // Bump the LRU clock up front: the borrow of the entry below
            // must not overlap a borrow of the clock.
            st.tick += 1;
            let tick = st.tick;
            match st.slots.get_mut(key) {
                Some(Slot::Ready(entry)) => {
                    entry.last_use = tick;
                    let value = Arc::clone(&entry.value);
                    st.stats.hits += 1;
                    return Ok(Lookup {
                        value,
                        how: if waited { Acquire::Waited } else { Acquire::Hit },
                        evicted: Vec::new(),
                    });
                }
                Some(Slot::InFlight) => {
                    if !waited {
                        waited = true;
                        st.stats.waits += 1;
                    }
                    st = match self.ready.wait(st) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                None => {
                    st.slots.insert(key.to_string(), Slot::InFlight);
                    st.stats.misses += 1;
                    break;
                }
            }
        }
        drop(st);

        // Leader path: compute outside the lock, under an unwind guard.
        let mut guard = InFlightGuard {
            cache: self,
            key,
            armed: true,
        };
        let (value, bytes) = compute()?; // guard cleans up on Err and on panic
        guard.armed = false;
        drop(guard);

        let value = Arc::new(value);
        let mut st = self.lock();
        st.stats.computes += 1;
        st.tick += 1;
        let tick = st.tick;
        st.slots.insert(
            key.to_string(),
            Slot::Ready(Entry {
                value: Arc::clone(&value),
                bytes,
                last_use: tick,
            }),
        );
        st.resident_bytes += bytes;
        let evicted = self.evict_over_budget(&mut st, key);
        drop(st);
        self.ready.notify_all();
        Ok(Lookup {
            value,
            how: Acquire::Computed,
            evicted,
        })
    }

    /// Evict least-recently-used `Ready` entries (never in-flight
    /// markers, never `keep`) until residency fits the budget or nothing
    /// evictable remains. Caller holds the lock.
    fn evict_over_budget(&self, st: &mut MutexGuard<'_, State<V>>, keep: &str) -> Vec<Arc<V>> {
        let mut evicted = Vec::new();
        while st.resident_bytes > self.budget_bytes {
            let victim = st
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(e) if k != keep => Some((e.last_use, k.clone())),
                    _ => None,
                })
                .min();
            let Some((_, key)) = victim else { break };
            if let Some(Slot::Ready(entry)) = st.slots.remove(&key) {
                st.resident_bytes -= entry.bytes;
                st.stats.evictions += 1;
                evicted.push(entry.value);
            }
        }
        evicted
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Bytes currently charged for resident entries.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident_bytes
    }

    /// Resident (`Ready`) entries.
    pub fn len(&self) -> usize {
        self.lock()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Model-only: poison the cache lock by panicking while holding it.
    /// No cache method panics, so poisoning is unreachable through the
    /// public API — the loom model uses this to prove the documented
    /// recover-by-taking-the-inner-value claim holds on every schedule.
    #[cfg(loom)]
    pub fn poison_for_model(&self) {
        let _guard = self.state.lock();
        // nmt-lint: allow(panic) — panicking while holding the lock IS
        //   this hook's purpose: it forces poisoning so the model can
        //   prove recovery.
        panic!("loom model: poisoning the cache lock");
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ok(v: u32, bytes: u64) -> impl FnOnce() -> Result<(u32, u64), String> {
        move || Ok((v, bytes))
    }

    #[test]
    fn miss_then_hit() {
        let cache: PlanCache<u32> = PlanCache::new(1024);
        let first = cache.get_or_compute("a", ok(7, 10)).unwrap();
        assert_eq!(first.how, Acquire::Computed);
        assert_eq!(*first.value, 7);
        let second = cache
            .get_or_compute("a", || -> Result<(u32, u64), String> {
                Err("must not recompute".into())
            })
            .unwrap();
        assert_eq!(second.how, Acquire::Hit);
        assert_eq!(*second.value, 7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.computes), (1, 1, 1));
        assert_eq!(cache.resident_bytes(), 10);
    }

    #[test]
    fn error_leaves_no_marker_and_allows_retry() {
        let cache: PlanCache<u32> = PlanCache::new(1024);
        let err = cache
            .get_or_compute("a", || -> Result<(u32, u64), String> { Err("boom".into()) })
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty());
        let retry = cache.get_or_compute("a", ok(1, 1)).unwrap();
        assert_eq!(retry.how, Acquire::Computed);
    }

    #[test]
    fn lru_eviction_respects_budget_and_returns_victims() {
        let cache: PlanCache<u32> = PlanCache::new(100);
        cache.get_or_compute("a", ok(1, 60)).unwrap();
        cache.get_or_compute("b", ok(2, 30)).unwrap();
        // Touch "a" so "b" is the LRU entry.
        assert_eq!(cache.get_or_compute("a", ok(0, 0)).unwrap().how, Acquire::Hit);
        let third = cache.get_or_compute("c", ok(3, 40)).unwrap();
        // 60 + 30 + 40 > 100: evict LRU ("b"), leaving a + c = 100.
        assert_eq!(third.evicted.len(), 1);
        assert_eq!(*third.evicted[0], 2);
        assert_eq!(cache.resident_bytes(), 100);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "b" now misses again.
        assert_eq!(cache.get_or_compute("b", ok(2, 30)).unwrap().how, Acquire::Computed);
    }

    #[test]
    fn oversized_entry_is_kept_but_evicts_everything_else() {
        let cache: PlanCache<u32> = PlanCache::new(50);
        cache.get_or_compute("a", ok(1, 40)).unwrap();
        let big = cache.get_or_compute("big", ok(2, 500)).unwrap();
        assert_eq!(big.evicted.len(), 1, "the budget is soft only for the newest entry");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), 500);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    let got = cache
                        .get_or_compute("shared", || -> Result<(u32, u64), String> {
                            // ordering: counter only; no ordering dependency
                            computes.fetch_add(1, Ordering::Relaxed);
                            // Widen the in-flight window so followers
                            // actually contend.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            Ok((42, 8))
                        })
                        .unwrap();
                    assert_eq!(*got.value, 42);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1, "single-flight");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.computes, 1);
        assert_eq!(s.hits, 7, "every non-leader resolves to the one computed value");
    }
}
