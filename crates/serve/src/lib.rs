//! SpMM-as-a-service: a synchronous-core request broker over the
//! planner, with a single-flight plan cache and admission control.
//!
//! The stack underneath plans and executes *one* SpMM at a time; this
//! crate is the serving layer that makes repeated, concurrent traffic
//! cheap and — crucially for this repo — *replayable*:
//!
//! * [`trace`] — the request schema and seeded trace synthesis. A trace
//!   names matrices by generator spec, so a few hundred bytes of JSONL
//!   replay bit-identical workloads anywhere.
//! * [`cache`] — [`PlanCache`], the content-keyed single-flight cache:
//!   concurrent requests for one matrix cost one SSF profile + one
//!   conversion; LRU + byte-budget eviction recycles artifact buffers
//!   into the engine pools.
//! * [`broker`] — [`serve_trace`]: deterministic admission (bounded
//!   queue, typed rejections, deficit-round-robin tenant fairness),
//!   then parallel execution over the cache.
//! * [`ledger`] — [`ServeLedger`], the schema-versioned response
//!   artifact. Its deterministic sections are byte-identical at any
//!   thread count; schedule-dependent measurements live in an optional
//!   stats section the gate ignores.
//!
//! The cache key is [`nmt::MatrixFingerprint`]: shape, nnz, tile width,
//! the SSF decision inputs, and an FNV digest of the raw CSR arrays —
//! derived from exactly what a `DecisionAudit` records, so a cached plan
//! is reused only when the planner would have decided identically.

pub mod broker;
pub mod cache;
pub mod ledger;
pub mod trace;

pub use broker::{serve_trace, BrokerConfig, CachedPlan, ServeError};
pub use cache::{Acquire, CacheStats, Lookup, PlanCache};
pub use ledger::{
    RejectionRow, ResponseRow, ServeConfigEcho, ServeCounts, ServeLedger, ServeStats,
    SERVE_SCHEMA_VERSION,
};
pub use trace::{parse_jsonl, synth_trace, to_jsonl, Request, SynthSpec};
