//! Loom models for the single-flight [`PlanCache`]: run with
//! `RUSTFLAGS="--cfg loom" cargo test -p nmt-serve --test loom_cache`.
//!
//! The cache's documented contracts, checked on every interleaving the
//! model explores:
//! * **Single-flight:** concurrent `get_or_compute` calls for one key
//!   run the compute closure exactly once; every caller observes the
//!   same value; nobody deadlocks on the condvar.
//! * **Leader failure:** a leader whose closure panics (or errors)
//!   removes its in-flight marker and wakes the waiters, one of whom
//!   retries — at most one extra compute, never a hang.
//! * **Insert/evict races:** a byte budget tight enough to evict on
//!   every insert never evicts an in-flight marker or the entry just
//!   inserted, and the resident-byte ledger stays exact.
//! * **Poison recovery:** a panic while holding the cache lock (forced
//!   via a model-only hook) leaves every later operation functional.
#![cfg(loom)]

use loom::thread;
use nmt_serve::{Acquire, PlanCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn ok(v: u32, bytes: u64) -> impl FnOnce() -> Result<(u32, u64), String> {
    move || Ok((v, bytes))
}

#[test]
fn single_flight_computes_exactly_once() {
    loom::model(|| {
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                thread::spawn(move || {
                    let got = cache
                        .get_or_compute("k", || -> Result<(u32, u64), String> {
                            // ordering: model-side tally only; loom checks the
                            //   cache's own synchronization, not this counter
                            computes.fetch_add(1, Ordering::Relaxed);
                            Ok((7, 8))
                        })
                        .unwrap();
                    assert_eq!(*got.value, 7, "all callers see the leader's value");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1, "single-flight");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.computes, 1);
        assert_eq!(s.hits, 1, "the non-leader resolves from the inserted entry");
        assert_eq!(cache.resident_bytes(), 8);
    });
}

#[test]
fn panicking_leader_wakes_waiters_who_retry() {
    loom::model(|| {
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let bomb_armed = Arc::new(AtomicU64::new(0));
        let c1 = Arc::clone(&cache);
        let n1 = Arc::clone(&computes);
        let armed = Arc::clone(&bomb_armed);
        let faulty = thread::spawn(move || {
            let _ = c1.get_or_compute("k", || -> Result<(u32, u64), String> {
                // ordering: model-side tally only
                n1.fetch_add(1, Ordering::Relaxed);
                armed.store(1, Ordering::Relaxed);
                panic!("leader dies mid-compute");
            });
        });
        let c2 = Arc::clone(&cache);
        let n2 = Arc::clone(&computes);
        let retry = thread::spawn(move || {
            let got = c2
                .get_or_compute("k", || -> Result<(u32, u64), String> {
                    // ordering: model-side tally only
                    n2.fetch_add(1, Ordering::Relaxed);
                    Ok((9, 4))
                })
                .unwrap();
            assert_eq!(*got.value, 9);
        });
        // Schedules where the retry thread inserts first turn the faulty
        // caller into a plain hit: its bomb never arms and it returns Ok.
        // On every schedule where the bomb DID run, the panic must
        // propagate through join — and must not strand the other caller.
        let faulty_outcome = faulty.join();
        assert_eq!(
            faulty_outcome.is_err(),
            bomb_armed.load(Ordering::Relaxed) == 1,
            "join reports a panic iff the doomed closure actually ran"
        );
        retry.join().unwrap();
        // Either the retry thread led from the start (1 compute) or it
        // waited out the doomed leader and recomputed (2 runs, 1 success).
        let total = computes.load(Ordering::Relaxed);
        assert!((1..=2).contains(&total), "computes = {total}");
        let s = cache.stats();
        assert_eq!(s.computes, 1, "only the successful compute inserts");
        assert_eq!(cache.resident_bytes(), 4);
        // The key is resident: a third lookup is a pure hit.
        let again = cache.get_or_compute("k", ok(0, 0)).unwrap();
        assert_eq!(again.how, Acquire::Hit);
    });
}

#[test]
fn insert_evict_race_keeps_the_byte_ledger_exact() {
    loom::model(|| {
        // Budget fits exactly one 8-byte entry: every second insert must
        // evict the other key, whatever the interleaving.
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(8));
        let keys = ["a", "b"];
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let got = cache.get_or_compute(keys[i], ok(i as u32, 8)).unwrap();
                    assert_eq!(*got.value, i as u32);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.computes, 2, "distinct keys never share a flight");
        // Serial schedules evict the first entry; fully overlapped ones
        // may insert both before either eviction pass runs, but the
        // budget then evicts on the later insert. Either way at most one
        // entry survives and the ledger matches what is resident.
        assert_eq!(s.evictions, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), 8);
    });
}

#[test]
fn poisoned_lock_recovers_on_every_interleaving() {
    loom::model(|| {
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(64));
        let c = Arc::clone(&cache);
        let poisoner = thread::spawn(move || c.poison_for_model());
        assert!(poisoner.join().is_err(), "the poisoner must report its panic");
        // Every entry point recovers the inner state; none may deadlock
        // or propagate the poison.
        let got = cache.get_or_compute("k", ok(3, 16)).unwrap();
        assert_eq!(got.how, Acquire::Computed);
        assert_eq!(cache.stats().computes, 1);
        assert_eq!(cache.resident_bytes(), 16);
    });
}

#[test]
fn lookup_racing_the_poisoner_still_completes() {
    loom::model(|| {
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new(64));
        let c1 = Arc::clone(&cache);
        let poisoner = thread::spawn(move || c1.poison_for_model());
        let c2 = Arc::clone(&cache);
        let looker = thread::spawn(move || {
            // Before, during, or after the poisoning — all must answer.
            let got = c2.get_or_compute("k", ok(5, 4)).unwrap();
            assert_eq!(*got.value, 5);
        });
        assert!(poisoner.join().is_err());
        looker.join().unwrap();
        assert_eq!(cache.stats().computes, 1);
    });
}
