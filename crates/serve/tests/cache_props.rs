//! Property tests for the serve-layer plan cache and its key.
//!
//! Three families, over arbitrary valid CSR matrices:
//!
//! 1. **Stability** — fingerprinting is a pure function of matrix
//!    content and tile width: the same matrix always yields the same
//!    cache key, and a deep copy yields the key of the original.
//! 2. **Sensitivity** — every [`Corruption`] the formats crate can
//!    express moves the raw-content digest, so no corrupted variant can
//!    ever alias a healthy matrix's cached plan.
//! 3. **Hit equivalence** — a plan served from the cache executes the
//!    kernel bitwise-identically to the cold plan it was computed from:
//!    same choice, same artifact kind, same simulated time, same output
//!    matrix down to the f32 bit patterns.

use std::sync::Arc;

use nmt::{MatrixFingerprint, PlannerConfig, SpmmPlanner};
use nmt_engine::artifact::ConversionArtifact;
use nmt_formats::arbitrary::{corrupt_csr_parts, csr_strategy, Corruption};
use nmt_formats::{Csr, SparseMatrix};
use nmt_kernels::{bstat_tiled_dcsr_offline, dcsrmm_row_per_warp, KernelRun};
use nmt_matgen::random_dense;
use nmt_model::ssf::Choice;
use nmt_serve::{CachedPlan, PlanCache};
use nmt_sim::Gpu;
use proptest::prelude::*;

const TILE_W: usize = 8;

/// Plan + convert `a` exactly as the broker's compute closure does.
fn cold_plan(planner: &SpmmPlanner, a: &Csr) -> CachedPlan {
    let cfg = planner.config();
    let (_profile, choice) = planner.plan(a);
    let artifact = match choice {
        Choice::BStationary => {
            ConversionArtifact::tiled(a, cfg.tile_w, cfg.tile_h).expect("valid tiling")
        }
        Choice::CStationary => ConversionArtifact::row_major(a),
    };
    CachedPlan { choice, artifact }
}

/// Run the dataflow-matched kernel for `plan` against a fixed dense B.
fn execute(cfg: &PlannerConfig, plan: &CachedPlan, a: &Csr, b_seed: u64) -> KernelRun {
    let b = random_dense(a.shape().ncols, 4, b_seed);
    let mut gpu = Gpu::new(cfg.gpu.clone()).expect("gpu config");
    match &plan.artifact {
        ConversionArtifact::RowMajor(d) => dcsrmm_row_per_warp(&mut gpu, d, &b),
        ConversionArtifact::Tiled(t) => bstat_tiled_dcsr_offline(&mut gpu, t, &b),
    }
    .expect("kernel run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same matrix, same tile width → same fingerprint and same key;
    /// a reconstructed copy of the matrix keys identically.
    #[test]
    fn fingerprint_is_stable(a in csr_strategy()) {
        let fp1 = MatrixFingerprint::of(&a, TILE_W);
        let fp2 = MatrixFingerprint::of(&a, TILE_W);
        prop_assert_eq!(fp1, fp2);
        prop_assert_eq!(fp1.key(), fp2.key());

        let shape = a.shape();
        let copy = Csr::new(
            shape.nrows,
            shape.ncols,
            a.rowptr().to_vec(),
            a.colidx().to_vec(),
            a.values().to_vec(),
        )
        .expect("copy of a valid matrix is valid");
        prop_assert_eq!(MatrixFingerprint::of(&copy, TILE_W).key(), fp1.key());
    }

    /// Every expressible corruption moves the raw-content digest, so a
    /// corrupted matrix can never alias a healthy matrix's cache entry.
    #[test]
    fn fingerprint_separates_every_corruption(a in csr_strategy()) {
        let shape = a.shape();
        let clean = MatrixFingerprint::of_parts(
            shape.nrows,
            shape.ncols,
            TILE_W,
            a.rowptr(),
            a.colidx(),
            a.values(),
        );
        for kind in Corruption::ALL {
            // None = matrix too small to express this corruption.
            if let Some((rowptr, colidx, values)) = corrupt_csr_parts(&a, kind) {
                let bent = MatrixFingerprint::of_parts(
                    shape.nrows,
                    shape.ncols,
                    TILE_W,
                    &rowptr,
                    &colidx,
                    &values,
                );
                prop_assert!(
                    bent.digest != clean.digest,
                    "corruption {:?} left the digest unchanged",
                    kind
                );
            }
        }
    }

    /// A cache hit executes bitwise-identically to the cold plan: the
    /// hit returns the very same artifact, and replaying the kernel on
    /// it reproduces the cold run's output and simulated time exactly.
    #[test]
    fn cache_hit_executes_bitwise_identically(a in csr_strategy(), b_seed in 0u64..1024) {
        let mut config = PlannerConfig::test_small();
        config.tile_w = TILE_W;
        config.tile_h = TILE_W;
        let planner = SpmmPlanner::new(config);
        let key = MatrixFingerprint::of(&a, TILE_W).key();

        let cache: PlanCache<CachedPlan> = PlanCache::new(64 << 20);
        let cold = cache
            .get_or_compute(&key, || -> Result<(CachedPlan, u64), String> {
                let plan = cold_plan(&planner, &a);
                let bytes = plan.artifact.storage_bytes() as u64;
                Ok((plan, bytes))
            })
            .expect("cold compute");
        let hit = cache
            .get_or_compute(&key, || -> Result<(CachedPlan, u64), String> {
                panic!("second lookup of the same key must not recompute")
            })
            .expect("warm lookup");
        prop_assert!(Arc::ptr_eq(&cold.value, &hit.value), "hit returns the cached artifact");

        let cfg = planner.config();
        let first = execute(cfg, &cold.value, &a, b_seed);
        let second = execute(cfg, &hit.value, &a, b_seed);
        prop_assert_eq!(second.c.as_slice(), first.c.as_slice());
        prop_assert_eq!(second.stats.total_ns.to_bits(), first.stats.total_ns.to_bits());

        // And against a from-scratch plan (no cache at all): the cached
        // artifact is not just self-consistent but equal to recomputing.
        let fresh = cold_plan(&planner, &a);
        prop_assert_eq!(fresh.choice, cold.value.choice);
        let third = execute(cfg, &fresh, &a, b_seed);
        prop_assert_eq!(third.c.as_slice(), first.c.as_slice());
    }
}
