//! Tiled formats: vertical strips of CSR and strip×tile DCSR.
//!
//! Tiling cuts the sparse matrix `A` into vertical strips as wide as a `B`
//! tile (64 columns in the paper, §5.1) so that a thread block can keep a
//! 64×64 tile of `B` in shared memory. A *tiled CSR* strip still carries a
//! full `rowptr` with one entry per matrix row — even though ~99 % of rows
//! in a typical strip are empty (Figure 5) — which is exactly the redundancy
//! *tiled DCSR* removes (Figure 6).

use crate::{
    Csc, Csr, Dcsr, FormatError, Index, Shape, SparseMatrix, StorageSize, Value, INDEX_BYTES,
    VALUE_BYTES,
};

/// Default tile edge used throughout the paper: "We use B tile dimension of
/// 64 × 64 to fully utilize the shared memory of an SM" (§5.1).
pub const DEFAULT_TILE: usize = 64;

// ---------------------------------------------------------------------------
// Tiled CSR
// ---------------------------------------------------------------------------

/// One vertical strip of a [`TiledCsr`]: a full-height CSR whose columns are
/// re-based to the strip (`0 .. width`).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrStrip {
    /// First global column covered by this strip.
    pub col_start: Index,
    /// Number of columns in this strip (≤ tile width at the right edge).
    pub width: usize,
    /// Full row pointer: `nrows + 1` entries, one per matrix row.
    pub rowptr: Vec<Index>,
    /// Local column indices (`0 .. width`).
    pub colidx: Vec<Index>,
    /// Values.
    pub values: Vec<Value>,
}

impl CsrStrip {
    /// Number of non-zeros in the strip.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Number of rows with at least one non-zero inside this strip.
    pub fn nonzero_rows(&self) -> usize {
        self.rowptr.windows(2).filter(|w| w[0] < w[1]).count()
    }
}

/// CSR cut into vertical strips, each retaining a full row pointer.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledCsr {
    nrows: usize,
    ncols: usize,
    tile_w: usize,
    strips: Vec<CsrStrip>,
}

impl TiledCsr {
    /// Slice a CSR matrix into vertical strips of `tile_w` columns.
    pub fn from_csr(csr: &Csr, tile_w: usize) -> Result<Self, FormatError> {
        if tile_w == 0 {
            return Err(FormatError::ShapeMismatch {
                detail: "tile width must be > 0".into(),
            });
        }
        let shape = csr.shape();
        let nstrips = crate::strip_count(shape.ncols, tile_w);
        let mut builders: Vec<(Vec<Index>, Vec<Index>, Vec<Value>)> = (0..nstrips)
            .map(|_| (Vec::with_capacity(shape.nrows + 1), Vec::new(), Vec::new()))
            .collect();
        for b in &mut builders {
            b.0.push(0);
        }
        for r in 0..shape.nrows {
            let (cols, vals) = csr.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let s = c as usize / tile_w;
                builders[s].1.push(c - (s * tile_w) as Index);
                builders[s].2.push(v);
            }
            for b in &mut builders {
                b.0.push(b.1.len() as Index);
            }
        }
        let strips = builders
            .into_iter()
            .enumerate()
            .map(|(s, (rowptr, colidx, values))| CsrStrip {
                col_start: (s * tile_w) as Index,
                width: tile_w.min(shape.ncols.saturating_sub(s * tile_w)).max(1),
                rowptr,
                colidx,
                values,
            })
            .collect();
        Ok(Self {
            nrows: shape.nrows,
            ncols: shape.ncols,
            tile_w,
            strips,
        })
    }

    /// The strips, left to right.
    pub fn strips(&self) -> &[CsrStrip] {
        &self.strips
    }

    /// Strip (tile) width.
    pub fn tile_width(&self) -> usize {
        self.tile_w
    }

    /// Reassemble the original CSR (inverse of `from_csr`).
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0 as Index; self.nrows + 1];
        let mut colidx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            for strip in &self.strips {
                let (lo, hi) = (strip.rowptr[r] as usize, strip.rowptr[r + 1] as usize);
                for k in lo..hi {
                    colidx.push(strip.col_start + strip.colidx[k]);
                    values.push(strip.values[k]);
                }
            }
            rowptr[r + 1] = colidx.len() as Index;
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

impl SparseMatrix for TiledCsr {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.strips.iter().map(CsrStrip::nnz).sum()
    }
}

impl StorageSize for TiledCsr {
    /// Each strip pays a full `rowptr` (`nrows + 1` entries) — the
    /// "redundant row pointer data" of Figure 6 that makes tiled CSR
    /// bandwidth-intensive for low information content.
    fn metadata_bytes(&self) -> usize {
        self.strips
            .iter()
            .map(|s| (s.rowptr.len() + s.colidx.len()) * INDEX_BYTES)
            .sum()
    }

    fn data_bytes(&self) -> usize {
        self.strips
            .iter()
            .map(|s| s.values.len() * VALUE_BYTES)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Tiled DCSR
// ---------------------------------------------------------------------------

/// One `tile_h × tile_w` DCSR tile: only non-empty row segments are stored,
/// with row and column indices local to the tile.
///
/// This is exactly the structure the near-memory engine streams to shared
/// memory: `value`, `col_idx`, `row_ptr`, `row_idx` (Figure 11's outputs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DcsrTile {
    /// First global row covered by the tile.
    pub row_start: Index,
    /// First global column covered by the tile.
    pub col_start: Index,
    /// Tile height (rows covered; ≤ nominal tile height at the bottom edge).
    pub height: usize,
    /// Tile width (columns covered; ≤ nominal width at the right edge).
    pub width: usize,
    /// Local indices of non-empty rows within the tile, strictly increasing.
    pub rowidx: Vec<Index>,
    /// Row pointers over the densified rows (`rowidx.len() + 1` entries).
    pub rowptr: Vec<Index>,
    /// Local column indices (`0 .. width`).
    pub colidx: Vec<Index>,
    /// Values.
    pub values: Vec<Value>,
}

impl DcsrTile {
    /// Number of non-zeros in the tile.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Number of non-empty row segments (`nnzrows` in the API of Fig. 11).
    pub fn nnz_rows(&self) -> usize {
        self.rowidx.len()
    }

    /// True when the tile stores nothing.
    pub fn is_empty(&self) -> bool {
        self.colidx.is_empty()
    }

    /// Per-row-segment nnz counts — the `r.nnz` terms of the normalized
    /// entropy H_norm (§3.1.4).
    pub fn row_segment_nnz(&self) -> impl Iterator<Item = usize> + '_ {
        self.rowptr.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Metadata bytes: colidx + rowptr + rowidx, all 4-byte entries.
    pub fn metadata_bytes(&self) -> usize {
        (self.colidx.len() + self.rowptr.len() + self.rowidx.len()) * INDEX_BYTES
    }

    /// Value payload bytes.
    pub fn data_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
    }

    /// Validate the tile's internal invariants (used by tests and by the
    /// engine's self-checks).
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.rowptr.len() != self.rowidx.len() + 1 {
            return Err(FormatError::LengthMismatch {
                expected: self.rowidx.len() + 1,
                found: self.rowptr.len(),
                name: "tile rowptr",
            });
        }
        if self.colidx.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.colidx.len(),
                found: self.values.len(),
                name: "tile values",
            });
        }
        if self.rowptr.first().copied().unwrap_or(0) != 0
            || self.rowptr.last().copied().unwrap_or(0) as usize != self.colidx.len()
        {
            return Err(FormatError::MalformedPointerArray {
                name: "tile rowptr",
                detail: "must span 0..nnz".into(),
            });
        }
        if self.rowptr.windows(2).any(|w| w[0] >= w[1]) && !self.colidx.is_empty() {
            return Err(FormatError::MalformedPointerArray {
                name: "tile rowptr",
                detail: "densified tile rows must be non-empty".into(),
            });
        }
        if self.rowidx.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotCanonical {
                detail: "tile rowidx unsorted".into(),
            });
        }
        if let Some(&r) = self.rowidx.iter().find(|&&r| r as usize >= self.height) {
            return Err(FormatError::IndexOutOfBounds {
                axis: "row",
                index: r,
                bound: self.height,
            });
        }
        if let Some(&c) = self.colidx.iter().find(|&&c| c as usize >= self.width) {
            return Err(FormatError::IndexOutOfBounds {
                axis: "col",
                index: c,
                bound: self.width,
            });
        }
        for i in 0..self.rowidx.len() {
            let (lo, hi) = (self.rowptr[i] as usize, self.rowptr[i + 1] as usize);
            if self.colidx[lo..hi].windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotCanonical {
                    detail: format!("tile row segment {i} has unsorted columns"),
                });
            }
        }
        Ok(())
    }

    /// Iterate `(global_row, global_col, value)` triplets.
    pub fn iter_global(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.rowidx.len()).flat_map(move |i| {
            let (lo, hi) = (self.rowptr[i] as usize, self.rowptr[i + 1] as usize);
            let r = self.row_start + self.rowidx[i];
            self.colidx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(move |(&c, &v)| (r, self.col_start + c, v))
        })
    }
}

/// The full matrix as strips of DCSR tiles: `strips[s][t]` is the tile at
/// strip `s` (column block) and vertical position `t` (row block).
#[derive(Debug, Clone, PartialEq)]
pub struct TiledDcsr {
    nrows: usize,
    ncols: usize,
    tile_w: usize,
    tile_h: usize,
    strips: Vec<Vec<DcsrTile>>,
}

impl TiledDcsr {
    /// Offline tiling of a CSR matrix into `tile_h × tile_w` DCSR tiles.
    ///
    /// This is the *offline tiled-DCSR* configuration of §5.2 (2.03×
    /// speedup, preprocessing cost not counted); the engine produces the
    /// same tiles online from CSC.
    pub fn from_csr(csr: &Csr, tile_w: usize, tile_h: usize) -> Result<Self, FormatError> {
        if tile_w == 0 || tile_h == 0 {
            return Err(FormatError::ShapeMismatch {
                detail: "tile dims must be > 0".into(),
            });
        }
        let shape = csr.shape();
        let nstrips = crate::strip_count(shape.ncols, tile_w);
        let ntiles = crate::tile_count(shape.nrows, tile_h);
        let mut strips: Vec<Vec<DcsrTile>> = (0..nstrips)
            .map(|s| {
                (0..ntiles)
                    .map(|t| DcsrTile {
                        row_start: (t * tile_h) as Index,
                        col_start: (s * tile_w) as Index,
                        height: tile_h.min(shape.nrows.saturating_sub(t * tile_h)).max(1),
                        width: tile_w.min(shape.ncols.saturating_sub(s * tile_w)).max(1),
                        ..DcsrTile::default()
                    })
                    .collect()
            })
            .collect();
        for r in 0..shape.nrows {
            let t = r / tile_h;
            let local_r = (r - t * tile_h) as Index;
            let (cols, vals) = csr.row(r);
            // Row-major CSR gives columns sorted, so per-strip segments are
            // contiguous runs; emit one densified row per touched strip.
            let mut k = 0;
            while k < cols.len() {
                let s = cols[k] as usize / tile_w;
                let strip_end = ((s + 1) * tile_w) as Index;
                let tile = &mut strips[s][t];
                tile.rowidx.push(local_r);
                while k < cols.len() && cols[k] < strip_end {
                    tile.colidx.push(cols[k] - (s * tile_w) as Index);
                    tile.values.push(vals[k]);
                    k += 1;
                }
                tile.rowptr.push(tile.colidx.len() as Index);
            }
        }
        for strip in &mut strips {
            for tile in strip {
                // rowptr built without the leading 0; prepend it.
                tile.rowptr.insert(0, 0);
                if tile.rowptr.len() == 1 {
                    // completely empty tile: canonical empty rowptr = [0]
                    debug_assert!(tile.rowidx.is_empty());
                }
            }
        }
        let out = Self {
            nrows: shape.nrows,
            ncols: shape.ncols,
            tile_w,
            tile_h,
            strips,
        };
        debug_assert!(
            out.validate().is_ok(),
            "tiling produced an invalid TiledDcsr: {:?}",
            out.validate().err()
        );
        Ok(out)
    }

    /// Check the whole tile grid: the strip/tile counts match the matrix
    /// dimensions, every tile sits at its grid position with the correct
    /// (edge-clamped) extent, and every tile's internal invariants hold
    /// ([`DcsrTile::validate`]).
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.tile_w == 0 || self.tile_h == 0 {
            return Err(FormatError::ShapeMismatch {
                detail: "tile dims must be > 0".into(),
            });
        }
        let nstrips = crate::strip_count(self.ncols, self.tile_w);
        let ntiles = crate::tile_count(self.nrows, self.tile_h);
        if self.strips.len() != nstrips {
            return Err(FormatError::LengthMismatch {
                expected: nstrips,
                found: self.strips.len(),
                name: "strips",
            });
        }
        for (s, strip) in self.strips.iter().enumerate() {
            if strip.len() != ntiles {
                return Err(FormatError::LengthMismatch {
                    expected: ntiles,
                    found: strip.len(),
                    name: "tiles per strip",
                });
            }
            for (t, tile) in strip.iter().enumerate() {
                let row_start = t * self.tile_h;
                let col_start = s * self.tile_w;
                let height = self.tile_h.min(self.nrows.saturating_sub(row_start)).max(1);
                let width = self.tile_w.min(self.ncols.saturating_sub(col_start)).max(1);
                if tile.row_start as usize != row_start
                    || tile.col_start as usize != col_start
                    || tile.height != height
                    || tile.width != width
                {
                    return Err(FormatError::ShapeMismatch {
                        detail: format!(
                            "tile ({s},{t}) covers ({},{})+{}x{}, grid expects \
                             ({row_start},{col_start})+{height}x{width}",
                            tile.row_start, tile.col_start, tile.height, tile.width
                        ),
                    });
                }
                tile.validate()?;
            }
        }
        Ok(())
    }

    /// Offline tiling from CSC (sanity mirror of the engine's online path).
    pub fn from_csc(csc: &Csc, tile_w: usize, tile_h: usize) -> Result<Self, FormatError> {
        Self::from_csr(&csc.to_csr(), tile_w, tile_h)
    }

    /// The strips, each a top-to-bottom vector of tiles.
    pub fn strips(&self) -> &[Vec<DcsrTile>] {
        &self.strips
    }

    /// Consume the tiling, returning the owned strips — the recycling
    /// path: evicted conversion artifacts hand their tile buffers back
    /// to the engine pools via `recycle_strips`.
    pub fn into_strips(self) -> Vec<Vec<DcsrTile>> {
        self.strips
    }

    /// Tile width.
    pub fn tile_width(&self) -> usize {
        self.tile_w
    }

    /// Tile height.
    pub fn tile_height(&self) -> usize {
        self.tile_h
    }

    /// Number of vertical strips.
    pub fn num_strips(&self) -> usize {
        self.strips.len()
    }

    /// Number of tiles per strip.
    pub fn tiles_per_strip(&self) -> usize {
        self.strips.first().map_or(0, Vec::len)
    }

    /// Iterate all tiles with their `(strip, tile)` coordinates.
    pub fn iter_tiles(&self) -> impl Iterator<Item = (usize, usize, &DcsrTile)> {
        self.strips
            .iter()
            .enumerate()
            .flat_map(|(s, tiles)| tiles.iter().enumerate().map(move |(t, tile)| (s, t, tile)))
    }

    /// Total number of non-empty row segments across all tiles — the
    /// quantity that inflates tiled metadata for scattered distributions.
    pub fn total_row_segments(&self) -> usize {
        self.iter_tiles().map(|(_, _, t)| t.nnz_rows()).sum()
    }

    /// Reassemble the original CSR (inverse of `from_csr`).
    pub fn to_csr(&self) -> Csr {
        let mut triplets: Vec<(Index, Index, Value)> = self
            .iter_tiles()
            .flat_map(|(_, _, tile)| tile.iter_global().collect::<Vec<_>>())
            .collect();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut rowptr = vec![0 as Index; self.nrows + 1];
        let mut colidx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            rowptr[r as usize + 1] += 1;
            colidx.push(c);
            values.push(v);
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }

    /// Reassemble one strip as an untiled [`Dcsr`] over local columns
    /// (used by tests comparing against the engine's per-strip output).
    pub fn strip_as_dcsr(&self, s: usize) -> Dcsr {
        let strip = &self.strips[s];
        let width = strip.first().map_or(1, |t| t.width);
        let mut rows: Vec<(Index, Vec<Index>, Vec<Value>)> = Vec::new();
        for tile in strip {
            for i in 0..tile.rowidx.len() {
                let (lo, hi) = (tile.rowptr[i] as usize, tile.rowptr[i + 1] as usize);
                rows.push((
                    tile.row_start + tile.rowidx[i],
                    tile.colidx[lo..hi].to_vec(),
                    tile.values[lo..hi].to_vec(),
                ));
            }
        }
        rows.sort_unstable_by_key(|&(r, _, _)| r);
        let mut rowidx = Vec::with_capacity(rows.len());
        let mut rowptr = vec![0 as Index];
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for (r, cols, vals) in rows {
            rowidx.push(r);
            colidx.extend(cols);
            values.extend(vals);
            rowptr.push(colidx.len() as Index);
        }
        Dcsr::from_parts_unchecked(self.nrows, width, rowidx, rowptr, colidx, values)
    }
}

impl SparseMatrix for TiledDcsr {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.iter_tiles().map(|(_, _, t)| t.nnz()).sum()
    }
}

impl StorageSize for TiledDcsr {
    fn metadata_bytes(&self) -> usize {
        self.iter_tiles().map(|(_, _, t)| t.metadata_bytes()).sum()
    }

    fn data_bytes(&self) -> usize {
        self.iter_tiles().map(|(_, _, t)| t.data_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample(n: usize, entries: &[(u32, u32)]) -> Csr {
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<f32> = (0..entries.len()).map(|i| i as f32 + 1.0).collect();
        Csr::from_coo(&Coo::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn tiled_csr_roundtrip() {
        let m = sample(10, &[(0, 0), (0, 9), (3, 4), (7, 2), (9, 9)]);
        let tiled = TiledCsr::from_csr(&m, 4).unwrap();
        assert_eq!(tiled.strips().len(), 3);
        assert_eq!(tiled.nnz(), m.nnz());
        assert_eq!(tiled.to_csr(), m);
    }

    #[test]
    fn tiled_csr_full_rowptr_per_strip() {
        let m = sample(10, &[(0, 0)]);
        let tiled = TiledCsr::from_csr(&m, 4).unwrap();
        for strip in tiled.strips() {
            assert_eq!(strip.rowptr.len(), 11); // nrows + 1 regardless of content
        }
        // Only the first strip has the non-zero.
        assert_eq!(tiled.strips()[0].nnz(), 1);
        assert_eq!(tiled.strips()[1].nnz(), 0);
        assert_eq!(tiled.strips()[0].nonzero_rows(), 1);
    }

    #[test]
    fn tiled_dcsr_roundtrip() {
        let m = sample(10, &[(0, 0), (0, 9), (3, 4), (7, 2), (9, 9), (5, 5)]);
        let tiled = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        assert_eq!(tiled.num_strips(), 3);
        assert_eq!(tiled.tiles_per_strip(), 3);
        assert_eq!(tiled.nnz(), m.nnz());
        assert_eq!(tiled.to_csr(), m);
        for (_, _, tile) in tiled.iter_tiles() {
            tile.validate().unwrap();
        }
    }

    #[test]
    fn tiled_dcsr_local_indices() {
        let m = sample(8, &[(5, 6)]);
        let tiled = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        // (5,6) lands in strip 1, tile 1, local (1, 2).
        let tile = &tiled.strips()[1][1];
        assert_eq!(tile.rowidx, vec![1]);
        assert_eq!(tile.colidx, vec![2]);
        assert_eq!(tile.row_start, 4);
        assert_eq!(tile.col_start, 4);
        let g: Vec<_> = tile.iter_global().collect();
        assert_eq!(g, vec![(5, 6, 1.0)]);
    }

    #[test]
    fn tiled_dcsr_metadata_beats_tiled_csr_for_sparse_strips() {
        // A large, very sparse matrix: tiled CSR pays nrows+1 pointers per
        // strip; tiled DCSR pays only for the few non-empty row segments.
        let n = 512;
        let entries: Vec<(u32, u32)> = (0..16u32)
            .map(|i| (i * 31 % n as u32, i * 17 % n as u32))
            .collect();
        let m = sample(n, &entries);
        let tcsr = TiledCsr::from_csr(&m, 64).unwrap();
        let tdcsr = TiledDcsr::from_csr(&m, 64, 64).unwrap();
        assert!(
            tdcsr.metadata_bytes() * 10 < tcsr.metadata_bytes(),
            "expected orders-of-magnitude reduction (Fig. 8): dcsr={} csr={}",
            tdcsr.metadata_bytes(),
            tcsr.metadata_bytes()
        );
    }

    #[test]
    fn tiled_dcsr_overhead_vs_untiled_csr_is_modest() {
        // Fig. 9: tiled DCSR is typically 1.3-2x the untiled CSR size.
        let n = 256;
        let entries: Vec<(u32, u32)> = (0..2000u32)
            .map(|i| ((i * 7919) % n as u32, (i * 104729) % n as u32))
            .collect();
        let m = sample(n, &entries);
        let tdcsr = TiledDcsr::from_csr(&m, 64, 64).unwrap();
        let ratio = tdcsr.storage_bytes() as f64 / m.storage_bytes() as f64;
        assert!(ratio > 1.0 && ratio < 3.0, "ratio = {ratio}");
    }

    #[test]
    fn row_spanning_multiple_strips_splits_segments() {
        let m = sample(8, &[(2, 1), (2, 5), (2, 7)]);
        let tiled = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        // Row 2 contributes a row segment to strip 0 (col 1) and strip 1
        // (cols 5, 7).
        assert_eq!(tiled.strips()[0][0].nnz(), 1);
        assert_eq!(tiled.strips()[1][0].nnz(), 2);
        assert_eq!(tiled.total_row_segments(), 2);
    }

    #[test]
    fn strip_as_dcsr_merges_tiles() {
        let m = sample(8, &[(1, 0), (6, 1), (3, 2)]);
        let tiled = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        let strip = tiled.strip_as_dcsr(0);
        assert_eq!(strip.rowidx(), &[1, 3, 6]);
        assert_eq!(strip.nnz(), 3);
    }

    #[test]
    fn zero_tile_dims_rejected() {
        let m = sample(4, &[(0, 0)]);
        assert!(TiledCsr::from_csr(&m, 0).is_err());
        assert!(TiledDcsr::from_csr(&m, 0, 4).is_err());
        assert!(TiledDcsr::from_csr(&m, 4, 0).is_err());
    }

    #[test]
    fn from_csc_equals_from_csr() {
        let m = sample(12, &[(0, 0), (11, 11), (5, 7), (7, 5), (3, 3)]);
        let a = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        let b = TiledDcsr::from_csc(&m.to_csc(), 4, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_edges_handled() {
        // 10x10 with 4-wide tiles -> last strip/tile is 2 wide/tall.
        let m = sample(10, &[(9, 9), (8, 8)]);
        let tiled = TiledDcsr::from_csr(&m, 4, 4).unwrap();
        let tile = &tiled.strips()[2][2];
        assert_eq!(tile.width, 2);
        assert_eq!(tile.height, 2);
        tile.validate().unwrap();
        assert_eq!(tiled.to_csr(), m);
    }
}
