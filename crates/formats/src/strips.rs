//! Vertical-strip statistics (Figure 5 of the paper).
//!
//! Figure 5 plots, over all 64-wide vertical strips of the SuiteSparse
//! suite, a histogram of the percentage of non-zero rows per strip,
//! observing that "the vast majority of rows in a strip of A are all
//! zeros" — the motivation for DCSR.

use crate::{Csr, SparseMatrix};

/// Number of vertical strips of width `tile_w` needed to cover `ncols`.
///
/// This is the single definition of the *phantom-strip convention*: a
/// degenerate matrix with `ncols == 0` still reports one (empty) strip, so
/// every per-strip loop — the converter farm, the online kernel, the SSF
/// model — runs at least once and produces well-formed (empty) output
/// instead of special-casing emptiness at each call site.
pub fn strip_count(ncols: usize, tile_w: usize) -> usize {
    assert!(tile_w > 0, "tile width must be positive");
    ncols.div_ceil(tile_w).max(1)
}

/// Number of horizontal tile bands of height `tile_h` needed to cover
/// `nrows`. Same phantom convention as [`strip_count`]: `nrows == 0`
/// still yields one (empty) band.
pub fn tile_count(nrows: usize, tile_h: usize) -> usize {
    assert!(tile_h > 0, "tile height must be positive");
    nrows.div_ceil(tile_h).max(1)
}

/// For each strip of width `tile_w`, the fraction of matrix rows that have
/// at least one non-zero inside the strip (`0.0 ..= 1.0`).
pub fn strip_nonzero_row_fraction(csr: &Csr, tile_w: usize) -> Vec<f64> {
    assert!(tile_w > 0, "tile width must be positive");
    let shape = csr.shape();
    if shape.nrows == 0 {
        return vec![0.0; strip_count(shape.ncols, tile_w)];
    }
    let nstrips = strip_count(shape.ncols, tile_w);
    let mut nonzero_rows = vec![0usize; nstrips];
    let mut touched = vec![usize::MAX; nstrips]; // last row that touched strip s
    for r in 0..shape.nrows {
        let (cols, _) = csr.row(r);
        for &c in cols {
            let s = c as usize / tile_w;
            if touched[s] != r {
                touched[s] = r;
                nonzero_rows[s] += 1;
            }
        }
    }
    nonzero_rows
        .into_iter()
        .map(|n| n as f64 / shape.nrows as f64)
        .collect()
}

/// Aggregate strip-sparsity statistics for one matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StripStats {
    /// Strip width used.
    pub tile_w: usize,
    /// Number of strips.
    pub num_strips: usize,
    /// Per-strip fraction of non-zero rows.
    pub fractions: Vec<f64>,
    /// Mean fraction of non-zero rows across strips
    /// (`mean(n_nnzrow_strip / n)` in the SSF denominator, Eq. 2).
    pub mean_fraction: f64,
}

impl StripStats {
    /// Compute strip statistics for a CSR matrix.
    pub fn compute(csr: &Csr, tile_w: usize) -> Self {
        let fractions = strip_nonzero_row_fraction(csr, tile_w);
        let mean_fraction = if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        };
        Self {
            tile_w,
            num_strips: fractions.len(),
            fractions,
            mean_fraction,
        }
    }

    /// Histogram of the per-strip fractions with the paper's Figure 5
    /// binning: 13 bins — [0,1%), [1,2%), … [9,10%), [10,25%), [25,50%),
    /// [50,100%]. Returns bin counts.
    pub fn figure5_histogram(&self) -> [usize; 13] {
        let mut bins = [0usize; 13];
        for &f in &self.fractions {
            let pct = f * 100.0;
            let bin = if pct < 10.0 {
                (pct.floor() as usize).min(9)
            } else if pct < 25.0 {
                10
            } else if pct < 50.0 {
                11
            } else {
                12
            };
            bins[bin] += 1;
        }
        bins
    }

    /// Human-readable labels for [`Self::figure5_histogram`] bins.
    pub fn figure5_labels() -> [&'static str; 13] {
        [
            "0-1%", "1-2%", "2-3%", "3-4%", "4-5%", "5-6%", "6-7%", "7-8%", "8-9%", "9-10%",
            "10-25%", "25-50%", "50-100%",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // 8x8; strip width 4 gives 2 strips.
        // Strip 0 touched by rows 0,1; strip 1 touched by row 0 only.
        let coo =
            Coo::from_triplets(8, 8, &[0, 0, 1, 0], &[0, 3, 2, 6], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn counts_strips() {
        assert_eq!(strip_count(8, 4), 2);
        assert_eq!(strip_count(9, 4), 3);
        assert_eq!(strip_count(0, 4), 1);
    }

    #[test]
    fn counts_tile_bands() {
        assert_eq!(tile_count(8, 4), 2);
        assert_eq!(tile_count(9, 4), 3);
        assert_eq!(tile_count(0, 4), 1, "phantom band for empty matrices");
    }

    #[test]
    fn fractions_per_strip() {
        let f = strip_nonzero_row_fraction(&sample(), 4);
        assert_eq!(f.len(), 2);
        assert!((f[0] - 2.0 / 8.0).abs() < 1e-12);
        assert!((f[1] - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn row_touching_strip_twice_counted_once() {
        // Row 0 has two entries in strip 0; must count as one non-zero row.
        let coo = Coo::from_triplets(4, 4, &[0, 0], &[0, 1], &[1.0, 2.0]).unwrap();
        let f = strip_nonzero_row_fraction(&Csr::from_coo(&coo), 2);
        assert!((f[0] - 0.25).abs() < 1e-12);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn stats_mean() {
        let s = StripStats::compute(&sample(), 4);
        assert_eq!(s.num_strips, 2);
        assert!((s.mean_fraction - (0.25 + 0.125) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let stats = StripStats {
            tile_w: 64,
            num_strips: 5,
            fractions: vec![0.005, 0.015, 0.095, 0.3, 0.99],
            mean_fraction: 0.0,
        };
        let h = stats.figure5_histogram();
        assert_eq!(h[0], 1); // 0.5%
        assert_eq!(h[1], 1); // 1.5%
        assert_eq!(h[9], 1); // 9.5%
        assert_eq!(h[11], 1); // 30%
        assert_eq!(h[12], 1); // 99%
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(StripStats::figure5_labels().len(), h.len());
    }

    #[test]
    fn empty_matrix_all_zero_fractions() {
        let m = Csr::new(4, 8, vec![0; 5], vec![], vec![]).unwrap();
        let f = strip_nonzero_row_fraction(&m, 4);
        assert_eq!(f, vec![0.0, 0.0]);
    }
}
