//! Compressed Sparse Column (CSC) — the engine's baseline storage format.
//!
//! §4.1 of the paper argues CSC is the right in-memory representation for
//! online strip extraction: a vertical strip of columns `c .. c+N` is reached
//! directly through `colptr`, so the conversion engine "just has to walk down
//! the columns" — no per-row binary scans (stateless CSR) and no jagged
//! frontier metadata (stateful CSR).

use crate::coo::check_dims;
use crate::{
    Coo, CooEntry, Csr, DenseMatrix, FormatError, Index, Shape, SparseMatrix, StorageSize, Value,
    INDEX_BYTES, VALUE_BYTES,
};

/// CSC sparse matrix: `value`, `rowidx` (one per non-zero, column-major) and
/// `colptr` (column boundaries; `colptr[j]..colptr[j+1]` spans column `j`).
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    colptr: Vec<Index>,
    rowidx: Vec<Index>,
    values: Vec<Value>,
}

impl Csc {
    /// Build from raw arrays, checking every CSC invariant via
    /// [`Csc::validate`] (mirror image of the CSR invariants).
    pub fn new(
        nrows: usize,
        ncols: usize,
        colptr: Vec<Index>,
        rowidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        let m = Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Build without per-call validation. Callers guarantee the invariants
    /// structurally (counting transposes); debug builds re-check them at
    /// every conversion boundary.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<Index>,
        rowidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        };
        debug_assert!(
            m.validate().is_ok(),
            "unchecked CSC constructor violated invariants: {:?}",
            m.validate().err()
        );
        m
    }

    /// Check every structural CSC invariant: monotone `colptr` spanning
    /// `0..nnz`, bounded and strictly increasing row indices within each
    /// column, and matching `rowidx`/`values` lengths. Shared with
    /// [`crate::views::CscView`], which validates the same invariants
    /// over borrowed arrays.
    pub fn validate(&self) -> Result<(), FormatError> {
        validate_csc_parts(
            self.nrows,
            self.ncols,
            &self.colptr,
            &self.rowidx,
            self.values.len(),
        )
    }

    /// Build from a COO matrix.
    pub fn from_coo(coo: &Coo) -> Self {
        // Column-major canonical order is row-major order of the transpose.
        Csr::from_coo(coo).to_csc()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[Index] {
        &self.colptr
    }

    /// Row index array (one per non-zero, column-major).
    pub fn rowidx(&self) -> &[Index] {
        &self.rowidx
    }

    /// Value array (one per non-zero, column-major).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[Index], &[Value]) {
        let (lo, hi) = (self.colptr[c] as usize, self.colptr[c + 1] as usize);
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in column `c`.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        (self.colptr[c + 1] - self.colptr[c]) as usize
    }

    /// Number of columns containing at least one non-zero (`n_nnzcol`).
    pub fn nonzero_cols(&self) -> usize {
        (0..self.ncols).filter(|&c| self.col_nnz(c) > 0).count()
    }

    /// Iterate all `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.ncols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter()
                .zip(vals)
                .map(move |(&r, &v)| (r, c as Index, v))
        })
    }

    /// Convert to CSR via a counting transpose (O(nnz + n)).
    pub fn to_csr(&self) -> Csr {
        let nnz = self.nnz();
        let mut rowptr = vec![0 as Index; self.nrows + 1];
        for &r in &self.rowidx {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0 as Index; nnz];
        let mut values = vec![0.0 as Value; nnz];
        let mut cursor = rowptr.clone();
        for (r, c, v) in self.iter() {
            let slot = cursor[r as usize] as usize;
            colidx[slot] = c;
            values[slot] = v;
            cursor[r as usize] += 1;
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }

    /// Convert to COO in column-major order.
    pub fn to_coo(&self) -> Coo {
        let entries = self
            .iter()
            .map(|(r, c, v)| CooEntry::new(r, c, v))
            .collect();
        Coo::from_entries(self.nrows, self.ncols, entries)
            // nmt-lint: allow(panic) — column-major iteration over a valid CSC yields valid entries
            .expect("CSC invariants guarantee valid COO entries")
    }

    /// Densify (for small test matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }

    /// For the engine: the slice of entries of column `c` whose row index is
    /// at least `row_start`, found by binary search. This is how the
    /// conversion unit positions `col_frontier` for a random tile access
    /// (random access "can also be efficiently supported", §4.1).
    pub fn col_frontier_at(&self, c: usize, row_start: Index) -> usize {
        let (lo, hi) = (self.colptr[c] as usize, self.colptr[c + 1] as usize);
        lo + self.rowidx[lo..hi].partition_point(|&r| r < row_start)
    }

    /// Borrow this matrix as a zero-copy [`crate::views::CscView`] — the
    /// form the conversion engine consumes, so engine code is agnostic to
    /// whether the arrays are owned here or borrowed from a CSR image.
    pub fn view(&self) -> crate::views::CscView<'_> {
        crate::views::CscView::from_validated(
            self.nrows,
            self.ncols,
            &self.colptr,
            &self.rowidx,
            &self.values,
        )
    }
}

/// The CSC structural invariants over raw (borrowed) arrays — the single
/// implementation behind [`Csc::validate`] and `CscView::new`.
pub(crate) fn validate_csc_parts(
    nrows: usize,
    ncols: usize,
    colptr: &[Index],
    rowidx: &[Index],
    values_len: usize,
) -> Result<(), FormatError> {
    check_dims(nrows, ncols)?;
    if colptr.len() != ncols + 1 {
        return Err(FormatError::LengthMismatch {
            expected: ncols + 1,
            found: colptr.len(),
            name: "colptr",
        });
    }
    if rowidx.len() != values_len {
        return Err(FormatError::LengthMismatch {
            expected: rowidx.len(),
            found: values_len,
            name: "values",
        });
    }
    if colptr.first() != Some(&0) {
        return Err(FormatError::MalformedPointerArray {
            name: "colptr",
            detail: "must start at 0".into(),
        });
    }
    let last = colptr.last().copied().unwrap_or(0);
    if last as usize != rowidx.len() {
        return Err(FormatError::MalformedPointerArray {
            name: "colptr",
            detail: format!("last entry {} must equal nnz {}", last, rowidx.len()),
        });
    }
    if colptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(FormatError::MalformedPointerArray {
            name: "colptr",
            detail: "must be non-decreasing".into(),
        });
    }
    for (c, w) in colptr.windows(2).enumerate() {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        let col_rows = &rowidx[lo..hi];
        for &r in col_rows {
            if r as usize >= nrows {
                return Err(FormatError::IndexOutOfBounds {
                    axis: "row",
                    index: r,
                    bound: nrows,
                });
            }
        }
        if col_rows.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotCanonical {
                detail: format!("column {c} has unsorted or duplicate row indices"),
            });
        }
    }
    Ok(())
}

impl SparseMatrix for Csc {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.rowidx.len()
    }
}

impl StorageSize for Csc {
    /// `4 × nnz` (rowidx) `+ 4 × (ncols + 1)` (colptr). "CSC is
    /// approximately the same size as CSR for square matrices" (§4.1).
    fn metadata_bytes(&self) -> usize {
        self.rowidx.len() * INDEX_BYTES + self.colptr.len() * INDEX_BYTES
    }

    fn data_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 13's example strip in CSC form: 3 columns,
    /// col0 = {a0@r0, a2@r2, a4@r4}, col1 = {b0@r0, b1@r1, b4@r4},
    /// col2 = {c0@r0, c2@r2}.
    pub(crate) fn figure13() -> Csc {
        Csc::new(
            5,
            3,
            vec![0, 3, 6, 8],
            vec![0, 2, 4, 0, 1, 4, 0, 2],
            vec![10.0, 12.0, 14.0, 20.0, 21.0, 24.0, 30.0, 32.0],
        )
        .unwrap()
    }

    #[test]
    fn figure13_shape_and_columns() {
        let m = figure13();
        assert_eq!(m.nnz(), 8);
        assert_eq!(m.col_nnz(0), 3);
        assert_eq!(m.col_nnz(1), 3);
        assert_eq!(m.col_nnz(2), 2);
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[30.0, 32.0]);
        assert_eq!(m.nonzero_cols(), 3);
    }

    #[test]
    fn validation_mirrors_csr() {
        assert!(Csc::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // short colptr
        assert!(Csc::new(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err()); // decreasing
        assert!(Csc::new(2, 1, vec![0, 1], vec![7], vec![1.0]).is_err()); // row oob
        assert!(Csc::new(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err()); // unsorted
        assert!(Csc::new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // dup
    }

    #[test]
    fn csr_roundtrip() {
        let m = figure13();
        let rt = m.to_csr().to_csc();
        assert_eq!(rt, m);
    }

    #[test]
    fn coo_roundtrip() {
        let m = figure13();
        assert_eq!(Csc::from_coo(&m.to_coo()), m);
    }

    #[test]
    fn frontier_binary_search() {
        let m = figure13();
        // col0 rows = [0,2,4]; first entry with row >= 3 is index 2 (row 4).
        assert_eq!(m.col_frontier_at(0, 0), 0);
        assert_eq!(m.col_frontier_at(0, 1), 1);
        assert_eq!(m.col_frontier_at(0, 3), 2);
        assert_eq!(m.col_frontier_at(0, 5), 3); // past the end
                                                // col2 rows = [0,2] live at global slots 6..8.
        assert_eq!(m.col_frontier_at(2, 1), 7);
    }

    #[test]
    fn storage_close_to_csr_for_square() {
        // §4.1: CSC ≈ CSR in size for square matrices.
        let coo = Coo::from_triplets(4, 4, &[0, 1, 2, 3], &[1, 2, 3, 0], &[1.0; 4]).unwrap();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        assert_eq!(csr.storage_bytes(), csc.storage_bytes());
    }

    #[test]
    fn wide_matrix_has_larger_colptr() {
        // §4.1: CSC becomes larger when the sparse matrix is wide.
        let coo = Coo::from_triplets(2, 100, &[0, 1], &[5, 50], &[1.0, 2.0]).unwrap();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        assert!(csc.metadata_bytes() > csr.metadata_bytes());
    }
}
