//! Structural and algebraic operations on CSR matrices.
//!
//! Utilities a downstream SpMM user needs around the core formats:
//! scaling, sparse addition, submatrix extraction, row/column permutation
//! (the knob that moves a matrix between the clustered and scattered
//! regimes of the SSF heuristic), filtering and diagonal access.

use crate::{Coo, Csr, FormatError, Index, SparseMatrix, Value};

/// Multiply every stored value by `factor` (structure unchanged).
pub fn scale(csr: &Csr, factor: Value) -> Csr {
    Csr::from_parts_unchecked(
        csr.shape().nrows,
        csr.shape().ncols,
        csr.rowptr().to_vec(),
        csr.colidx().to_vec(),
        csr.values().iter().map(|v| v * factor).collect(),
    )
}

/// Sparse matrix addition `A + B` (shapes must match). Coincident entries
/// sum; zeros arising from cancellation are kept as explicit entries,
/// matching Matrix Market semantics.
pub fn add(a: &Csr, b: &Csr) -> Result<Csr, FormatError> {
    if a.shape() != b.shape() {
        return Err(FormatError::ShapeMismatch {
            detail: format!("{} + {}", a.shape(), b.shape()),
        });
    }
    let shape = a.shape();
    let mut rowptr = vec![0 as Index; shape.nrows + 1];
    let mut colidx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..shape.nrows {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0, 0);
        while i < ac.len() || j < bc.len() {
            let next = match (ac.get(i), bc.get(j)) {
                (Some(&ca), Some(&cb)) if ca == cb => {
                    let e = (ca, av[i] + bv[j]);
                    i += 1;
                    j += 1;
                    e
                }
                (Some(&ca), Some(&cb)) if ca < cb => {
                    let e = (ca, av[i]);
                    i += 1;
                    e
                }
                (Some(_), Some(&cb)) => {
                    let e = (cb, bv[j]);
                    j += 1;
                    e
                }
                (Some(&ca), None) => {
                    let e = (ca, av[i]);
                    i += 1;
                    e
                }
                (None, Some(&cb)) => {
                    let e = (cb, bv[j]);
                    j += 1;
                    e
                }
                // nmt-lint: allow(panic) — the while condition guarantees i or j is in range
                (None, None) => unreachable!("loop condition guarantees one side"),
            };
            colidx.push(next.0);
            values.push(next.1);
        }
        rowptr[r + 1] = colidx.len() as Index;
    }
    Csr::new(shape.nrows, shape.ncols, rowptr, colidx, values)
}

/// Extract the dense-block submatrix `rows × cols` (half-open ranges),
/// re-based to local indices.
pub fn submatrix(
    csr: &Csr,
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> Result<Csr, FormatError> {
    let shape = csr.shape();
    if rows.end > shape.nrows || cols.end > shape.ncols {
        return Err(FormatError::ShapeMismatch {
            detail: format!("submatrix {rows:?}x{cols:?} exceeds {shape}",),
        });
    }
    let nrows = rows.len();
    let ncols = cols.len();
    let mut rowptr = vec![0 as Index; nrows + 1];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for (out_r, r) in rows.clone().enumerate() {
        let (cs, vs) = csr.row(r);
        let lo = cs.partition_point(|&c| (c as usize) < cols.start);
        let hi = cs.partition_point(|&c| (c as usize) < cols.end);
        for k in lo..hi {
            colidx.push(cs[k] - cols.start as Index);
            values.push(vs[k]);
        }
        rowptr[out_r + 1] = colidx.len() as Index;
    }
    Csr::new(nrows, ncols, rowptr, colidx, values)
}

/// Permute rows: output row `i` is input row `perm[i]`. `perm` must be a
/// permutation of `0..nrows`.
pub fn permute_rows(csr: &Csr, perm: &[usize]) -> Result<Csr, FormatError> {
    let shape = csr.shape();
    validate_permutation(perm, shape.nrows)?;
    let mut rowptr = vec![0 as Index; shape.nrows + 1];
    let mut colidx = Vec::with_capacity(csr.nnz());
    let mut values = Vec::with_capacity(csr.nnz());
    for (out_r, &src) in perm.iter().enumerate() {
        let (cs, vs) = csr.row(src);
        colidx.extend_from_slice(cs);
        values.extend_from_slice(vs);
        rowptr[out_r + 1] = colidx.len() as Index;
    }
    Csr::new(shape.nrows, shape.ncols, rowptr, colidx, values)
}

/// Permute columns: output column `perm_inv[c]` receives input column `c`;
/// `perm` is interpreted like [`permute_rows`] (output col `i` = input col
/// `perm[i]`).
pub fn permute_cols(csr: &Csr, perm: &[usize]) -> Result<Csr, FormatError> {
    let shape = csr.shape();
    validate_permutation(perm, shape.ncols)?;
    // Invert: input column c lands at output position inv[c].
    let mut inv = vec![0 as Index; shape.ncols];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i as Index;
    }
    let mut coo = Coo::new(shape.nrows, shape.ncols)?;
    for (r, c, v) in csr.iter() {
        coo.push(r, inv[c as usize], v)?;
    }
    coo.canonicalize();
    Ok(Csr::from_coo(&coo))
}

/// Drop entries for which `keep` returns false (e.g. magnitude pruning).
pub fn filter(csr: &Csr, mut keep: impl FnMut(Index, Index, Value) -> bool) -> Csr {
    let shape = csr.shape();
    let mut rowptr = vec![0 as Index; shape.nrows + 1];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for r in 0..shape.nrows {
        let (cs, vs) = csr.row(r);
        for (&c, &v) in cs.iter().zip(vs) {
            if keep(r as Index, c, v) {
                colidx.push(c);
                values.push(v);
            }
        }
        rowptr[r + 1] = colidx.len() as Index;
    }
    Csr::from_parts_unchecked(shape.nrows, shape.ncols, rowptr, colidx, values)
}

/// The main diagonal as a dense vector (`min(nrows, ncols)` entries,
/// zero where absent).
pub fn diagonal(csr: &Csr) -> Vec<Value> {
    let shape = csr.shape();
    let n = shape.nrows.min(shape.ncols);
    let mut d = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // r is also the diagonal column key
    for r in 0..n {
        let (cs, vs) = csr.row(r);
        if let Ok(k) = cs.binary_search(&(r as Index)) {
            d[r] = vs[k];
        }
    }
    d
}

/// Per-row sums of absolute values (the ∞-norm contributions).
pub fn row_abs_sums(csr: &Csr) -> Vec<Value> {
    (0..csr.shape().nrows)
        .map(|r| csr.row(r).1.iter().map(|v| v.abs()).sum())
        .collect()
}

fn validate_permutation(perm: &[usize], n: usize) -> Result<(), FormatError> {
    if perm.len() != n {
        return Err(FormatError::LengthMismatch {
            expected: n,
            found: perm.len(),
            name: "perm",
        });
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return Err(FormatError::NotCanonical {
                detail: format!("perm is not a permutation of 0..{n}"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 4x4:
        //  1 . 2 .
        //  . 3 . .
        //  . . . .
        //  4 . . 5
        Csr::new(
            4,
            4,
            vec![0, 2, 3, 3, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn scale_preserves_structure() {
        let s = scale(&sample(), 2.0);
        assert_eq!(s.rowptr(), sample().rowptr());
        assert_eq!(s.values(), &[2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn add_merges_and_sums() {
        let a = sample();
        let b = Csr::new(4, 4, vec![0, 1, 1, 2, 2], vec![0, 2], vec![10.0, 7.0]).unwrap();
        let c = add(&a, &b).unwrap();
        let d = c.to_dense();
        assert_eq!(d.get(0, 0), 11.0); // merged
        assert_eq!(d.get(2, 2), 7.0); // from b only
        assert_eq!(d.get(3, 3), 5.0); // from a only
        assert_eq!(c.nnz(), 6);
        // Shape mismatch rejected.
        let wrong = Csr::new(3, 4, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        assert!(add(&a, &wrong).is_err());
    }

    #[test]
    fn add_is_commutative() {
        let a = sample();
        let b = Csr::new(
            4,
            4,
            vec![0, 1, 2, 2, 3],
            vec![3, 1, 0],
            vec![1.5, -3.0, 2.5],
        )
        .unwrap();
        assert_eq!(
            add(&a, &b).unwrap().to_dense(),
            add(&b, &a).unwrap().to_dense()
        );
    }

    #[test]
    fn submatrix_rebases_indices() {
        let s = submatrix(&sample(), 0..2, 1..4).unwrap();
        assert_eq!(s.shape().nrows, 2);
        assert_eq!(s.shape().ncols, 3);
        let d = s.to_dense();
        assert_eq!(d.get(0, 1), 2.0); // was (0,2)
        assert_eq!(d.get(1, 0), 3.0); // was (1,1)
        assert_eq!(s.nnz(), 2);
        assert!(submatrix(&sample(), 0..5, 0..4).is_err());
    }

    #[test]
    fn permute_rows_roundtrip() {
        let a = sample();
        let perm = vec![3, 1, 0, 2];
        let p = permute_rows(&a, &perm).unwrap();
        assert_eq!(p.row(0).1, a.row(3).1);
        assert_eq!(p.row(2).1, a.row(0).1);
        // Applying the inverse restores the original.
        let mut inv = vec![0usize; 4];
        for (i, &x) in perm.iter().enumerate() {
            inv[x] = i;
        }
        assert_eq!(permute_rows(&p, &inv).unwrap(), a);
    }

    #[test]
    fn permute_cols_moves_entries() {
        let a = sample();
        // Output col i = input col perm[i]: swap columns 0 and 3.
        let p = permute_cols(&a, &[3, 1, 2, 0]).unwrap();
        let d = p.to_dense();
        assert_eq!(d.get(3, 3), 4.0); // was (3,0)
        assert_eq!(d.get(3, 0), 5.0); // was (3,3)
        assert_eq!(d.get(0, 2), 2.0); // unmoved
        assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn bad_permutations_rejected() {
        let a = sample();
        assert!(permute_rows(&a, &[0, 1, 2]).is_err()); // short
        assert!(permute_rows(&a, &[0, 1, 2, 2]).is_err()); // duplicate
        assert!(permute_rows(&a, &[0, 1, 2, 9]).is_err()); // out of range
        assert!(permute_cols(&a, &[0, 0, 2, 3]).is_err());
    }

    #[test]
    fn filter_prunes_by_magnitude() {
        let f = filter(&sample(), |_, _, v| v.abs() >= 3.0);
        assert_eq!(f.nnz(), 3);
        assert_eq!(f.values(), &[3.0, 4.0, 5.0]);
        let none = filter(&sample(), |_, _, _| false);
        assert_eq!(none.nnz(), 0);
    }

    #[test]
    fn diagonal_and_norms() {
        assert_eq!(diagonal(&sample()), vec![1.0, 3.0, 0.0, 5.0]);
        assert_eq!(row_abs_sums(&sample()), vec![3.0, 3.0, 0.0, 9.0]);
    }
}
