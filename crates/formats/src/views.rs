//! Zero-copy borrowed views of sparse formats.
//!
//! The conversion engine reads a CSC image — it never mutates or keeps
//! it — so handing it owned arrays forces copies exactly where the paper
//! wants streaming. [`CscView`] borrows the three CSC arrays instead:
//! a [`Csc`] lends itself via [`Csc::view`] at zero cost, and a CSR
//! matrix lends its arrays *reinterpreted* as the CSC image of its
//! transpose via [`CscView::transpose_of_csr`] (byte-for-byte the same
//! data — the §4.1 DCSC escape hatch), which previously required
//! cloning all three arrays.
//!
//! Borrowing rules: views are read-only, short-lived (the borrow pins
//! the source for the conversion call), and carry the same structural
//! invariants as the owned type — checked constructors validate, the
//! `from_validated`/`transpose_of_csr` fast paths inherit validity from
//! a source that already proved it (re-checked in debug builds).

use crate::csc::validate_csc_parts;
use crate::{Csc, Csr, FormatError, Index, Shape, SparseMatrix, Value};

/// A borrowed CSC image: `colptr`/`rowidx`/`values` slices plus the
/// dimensions, upholding every [`Csc`] invariant.
#[derive(Debug, Clone, Copy)]
pub struct CscView<'a> {
    nrows: usize,
    ncols: usize,
    colptr: &'a [Index],
    rowidx: &'a [Index],
    values: &'a [Value],
}

impl<'a> CscView<'a> {
    /// Build from borrowed arrays, checking every CSC invariant (the
    /// same checks as [`Csc::new`], without taking ownership).
    pub fn new(
        nrows: usize,
        ncols: usize,
        colptr: &'a [Index],
        rowidx: &'a [Index],
        values: &'a [Value],
    ) -> Result<Self, FormatError> {
        validate_csc_parts(nrows, ncols, colptr, rowidx, values.len())?;
        Ok(Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Build from arrays whose invariants the caller has already proved
    /// (a validated `Csc`, a validated `Csr` transpose image). Debug
    /// builds re-check.
    pub(crate) fn from_validated(
        nrows: usize,
        ncols: usize,
        colptr: &'a [Index],
        rowidx: &'a [Index],
        values: &'a [Value],
    ) -> Self {
        debug_assert!(
            validate_csc_parts(nrows, ncols, colptr, rowidx, values.len()).is_ok(),
            "CscView::from_validated given invalid arrays"
        );
        Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// The CSC image of `Aᵀ`, borrowed straight from a CSR image of `A`:
    /// `rowptr → colptr`, `colidx → rowidx`, no data movement. The CSR
    /// invariants of `A` *are* the CSC invariants of `Aᵀ`, so no
    /// revalidation is needed.
    pub fn transpose_of_csr(csr: &'a Csr) -> Self {
        let shape = csr.shape();
        Self::from_validated(
            shape.ncols,
            shape.nrows,
            csr.rowptr(),
            csr.colidx(),
            csr.values(),
        )
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &'a [Index] {
        self.colptr
    }

    /// Row index array (one per non-zero, column-major).
    pub fn rowidx(&self) -> &'a [Index] {
        self.rowidx
    }

    /// Value array (one per non-zero, column-major).
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// Copy into an owned [`Csc`] (test/interop convenience; the point
    /// of the view is to avoid this on hot paths).
    pub fn to_owned_csc(&self) -> Csc {
        Csc::from_parts_unchecked(
            self.nrows,
            self.ncols,
            self.colptr.to_vec(),
            self.rowidx.to_vec(),
            self.values.to_vec(),
        )
    }

    /// See [`Csc::col_frontier_at`]: first element of column `c` with
    /// row ≥ `row_start`, by binary search.
    pub fn col_frontier_at(&self, c: usize, row_start: Index) -> usize {
        let (lo, hi) = (self.colptr[c] as usize, self.colptr[c + 1] as usize);
        lo + self.rowidx[lo..hi].partition_point(|&r| r < row_start)
    }
}

impl SparseMatrix for CscView<'_> {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.rowidx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample_csc() -> Csc {
        Csc::new(
            5,
            3,
            vec![0, 3, 6, 8],
            vec![0, 2, 4, 0, 1, 4, 0, 2],
            vec![10.0, 12.0, 14.0, 20.0, 21.0, 24.0, 30.0, 32.0],
        )
        .unwrap()
    }

    #[test]
    fn view_borrows_without_copying() {
        let csc = sample_csc();
        let v = csc.view();
        assert_eq!(v.shape(), csc.shape());
        assert_eq!(v.nnz(), csc.nnz());
        assert!(std::ptr::eq(v.colptr(), csc.colptr()), "no copy");
        assert!(std::ptr::eq(v.values(), csc.values()), "no copy");
        assert_eq!(v.to_owned_csc(), csc);
    }

    #[test]
    fn checked_constructor_validates() {
        assert!(CscView::new(2, 2, &[0, 1], &[0], &[1.0]).is_err()); // short colptr
        assert!(CscView::new(2, 2, &[0, 2, 1], &[0], &[1.0]).is_err()); // decreasing
        assert!(CscView::new(2, 1, &[0, 1], &[7], &[1.0]).is_err()); // row oob
        assert!(CscView::new(3, 1, &[0, 2], &[1, 1], &[1.0, 2.0]).is_err()); // dup
        assert!(CscView::new(5, 0, &[0], &[], &[]).is_ok());
    }

    #[test]
    fn transpose_of_csr_matches_owned_conversion() {
        let coo =
            Coo::from_triplets(4, 6, &[0, 1, 1, 3], &[2, 0, 5, 3], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let csr = Csr::from_coo(&coo);
        let v = CscView::transpose_of_csr(&csr);
        assert_eq!(v.shape(), Shape::new(6, 4));
        assert!(std::ptr::eq(v.colptr(), csr.rowptr()), "no copy");
        // The borrowed image equals the materialized CSC of Aᵀ.
        let owned = v.to_owned_csc();
        assert_eq!(owned, Csc::from_coo(&csr.transpose().to_coo()));
    }

    #[test]
    fn frontier_search_matches_owned() {
        let csc = sample_csc();
        let v = csc.view();
        for c in 0..3 {
            for row in 0..6 {
                assert_eq!(v.col_frontier_at(c, row), csc.col_frontier_at(c, row));
            }
        }
    }
}
