//! Compressed Sparse Row (CSR) — the community-standard storage format
//! (Figure 1 of the paper) and the input format of the cuSPARSE baseline.

use crate::coo::check_dims;
use crate::{
    Coo, CooEntry, Csc, DenseMatrix, FormatError, Index, Shape, SparseMatrix, StorageSize, Value,
    INDEX_BYTES, VALUE_BYTES,
};

/// CSR sparse matrix: `value`, `colidx` (one per non-zero, row-major) and
/// `rowptr` (row boundaries; `rowptr[i]..rowptr[i+1]` spans row `i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<Index>,
    colidx: Vec<Index>,
    values: Vec<Value>,
}

impl Csr {
    /// Build from raw arrays, checking every CSR invariant via
    /// [`Csr::validate`].
    pub fn new(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<Index>,
        colidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        let m = Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Build without per-call validation. Callers guarantee the invariants
    /// structurally (counting transposes, canonical-order rebuilds); debug
    /// builds re-check them at every conversion boundary.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<Index>,
        colidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        };
        debug_assert!(
            m.validate().is_ok(),
            "unchecked CSR constructor violated invariants: {:?}",
            m.validate().err()
        );
        m
    }

    /// Check every structural CSR invariant:
    /// * `rowptr.len() == nrows + 1`, starts at 0, ends at nnz, monotone;
    /// * `colidx.len() == values.len() == nnz`, all indices `< ncols`;
    /// * within each row, columns strictly increase (canonical form).
    pub fn validate(&self) -> Result<(), FormatError> {
        check_dims(self.nrows, self.ncols)?;
        if self.rowptr.len() != self.nrows + 1 {
            return Err(FormatError::LengthMismatch {
                expected: self.nrows + 1,
                found: self.rowptr.len(),
                name: "rowptr",
            });
        }
        if self.colidx.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.colidx.len(),
                found: self.values.len(),
                name: "values",
            });
        }
        if self.rowptr.first() != Some(&0) {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: "must start at 0".into(),
            });
        }
        let last = self.rowptr.last().copied().unwrap_or(0);
        if last as usize != self.colidx.len() {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: format!("last entry {} must equal nnz {}", last, self.colidx.len()),
            });
        }
        if self.rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: "must be non-decreasing".into(),
            });
        }
        for (r, w) in self.rowptr.windows(2).enumerate() {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            let row_cols = &self.colidx[lo..hi];
            for &c in row_cols {
                if c as usize >= self.ncols {
                    return Err(FormatError::IndexOutOfBounds {
                        axis: "col",
                        index: c,
                        bound: self.ncols,
                    });
                }
            }
            if row_cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotCanonical {
                    detail: format!("row {r} has unsorted or duplicate column indices"),
                });
            }
        }
        Ok(())
    }

    /// Build from a COO matrix (a canonicalized copy is made as needed).
    pub fn from_coo(coo: &Coo) -> Self {
        let shape = coo.shape();
        let mut sorted;
        let canonical: &Coo = if coo.is_canonical() {
            coo
        } else {
            sorted = coo.clone();
            sorted.canonicalize();
            &sorted
        };
        let nnz = canonical.nnz();
        let mut rowptr = vec![0 as Index; shape.nrows + 1];
        for e in canonical.entries() {
            rowptr[e.row as usize + 1] += 1;
        }
        for i in 0..shape.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for e in canonical.entries() {
            colidx.push(e.col);
            values.push(e.val);
        }
        Self::from_parts_unchecked(shape.nrows, shape.ncols, rowptr, colidx, values)
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[Index] {
        &self.rowptr
    }

    /// Column index array (one per non-zero, row-major).
    pub fn colidx(&self) -> &[Index] {
        &self.colidx
    }

    /// Value array (one per non-zero, row-major).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[Index], &[Value]) {
        let (lo, hi) = (self.rowptr[r] as usize, self.rowptr[r + 1] as usize);
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.rowptr[r + 1] - self.rowptr[r]) as usize
    }

    /// Number of rows that contain at least one non-zero
    /// (`n_nnzrow` in the paper's Table 1 / SSF notation).
    pub fn nonzero_rows(&self) -> usize {
        (0..self.nrows).filter(|&r| self.row_nnz(r) > 0).count()
    }

    /// Number of columns that contain at least one non-zero (`n_nnzcol`).
    pub fn nonzero_cols(&self) -> usize {
        let mut seen = vec![false; self.ncols];
        for &c in &self.colidx {
            seen[c as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Iterate all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r as Index, c, v))
        })
    }

    /// Convert to COO (already canonical).
    pub fn to_coo(&self) -> Coo {
        let entries = self
            .iter()
            .map(|(r, c, v)| CooEntry::new(r, c, v))
            .collect();
        Coo::from_entries(self.nrows, self.ncols, entries)
            // nmt-lint: allow(panic) — row-major iteration over a valid CSR yields valid entries
            .expect("CSR invariants guarantee valid COO entries")
    }

    /// Convert to CSC via a counting transpose (O(nnz + n)).
    pub fn to_csc(&self) -> Csc {
        let nnz = self.nnz();
        let mut colptr = vec![0 as Index; self.ncols + 1];
        for &c in &self.colidx {
            colptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            colptr[i + 1] += colptr[i];
        }
        let mut rowidx = vec![0 as Index; nnz];
        let mut values = vec![0.0 as Value; nnz];
        let mut cursor = colptr.clone();
        for (r, c, v) in self.iter() {
            let slot = cursor[c as usize] as usize;
            rowidx[slot] = r;
            values[slot] = v;
            cursor[c as usize] += 1;
        }
        Csc::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, values)
    }

    /// Transposed copy (rows become columns), still in CSR.
    pub fn transpose(&self) -> Csr {
        // The CSC of A laid over swapped dimensions *is* the CSR of Aᵀ.
        let csc = self.to_csc();
        Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            csc.colptr().to_vec(),
            csc.rowidx().to_vec(),
            csc.values().to_vec(),
        )
    }

    /// Densify (for small test matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }

    /// Histogram of per-row nnz counts — feeds the load-imbalance analyses.
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Histogram of per-column nnz counts.
    pub fn col_nnz_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.colidx {
            counts[c as usize] += 1;
        }
        counts
    }
}

impl SparseMatrix for Csr {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.colidx.len()
    }
}

impl StorageSize for Csr {
    /// `4 × nnz` (colidx) `+ 4 × (nrows + 1)` (rowptr) — exactly the
    /// `8·nnz + 4·(N+1)` total of the paper's §2 once values are added.
    fn metadata_bytes(&self) -> usize {
        self.colidx.len() * INDEX_BYTES + self.rowptr.len() * INDEX_BYTES
    }

    fn data_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3x4 example of the paper's Figure 1 (values a..y -> 1..5).
    pub(crate) fn figure1() -> Csr {
        Csr::new(
            3,
            4,
            vec![0, 3, 3, 5],
            vec![0, 1, 2, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn figure1_matches_paper() {
        let m = figure1();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(1), 0); // rowptr[1] == rowptr[2] -> empty row
        assert_eq!(m.row_nnz(2), 2);
        assert_eq!(m.nonzero_rows(), 2);
        assert_eq!(m.nonzero_cols(), 4);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[4.0, 5.0]);
    }

    #[test]
    fn validation_rejects_bad_rowptr() {
        assert!(Csr::new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err()); // no 0 start
        assert!(Csr::new(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err()); // decreasing
        assert!(Csr::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // short
        assert!(Csr::new(2, 2, vec![0, 0, 2], vec![0], vec![1.0]).is_err()); // end != nnz
    }

    #[test]
    fn validation_rejects_bad_columns() {
        // out of bounds
        assert!(Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted within row
        assert!(Csr::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // duplicate within row
        assert!(Csr::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // colidx/values mismatch
        assert!(Csr::new(1, 3, vec![0, 2], vec![0, 1], vec![1.0]).is_err());
    }

    #[test]
    fn from_coo_roundtrip() {
        let m = figure1();
        let coo = m.to_coo();
        let back = Csr::from_coo(&coo);
        assert_eq!(back, m);
    }

    #[test]
    fn from_unsorted_coo() {
        let coo = Coo::from_triplets(
            3,
            4,
            &[2, 0, 2, 0, 0],
            &[3, 2, 1, 0, 1],
            &[5.0, 3.0, 4.0, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(Csr::from_coo(&coo), figure1());
    }

    #[test]
    fn csc_roundtrip_preserves_dense() {
        let m = figure1();
        let csc = m.to_csc();
        assert_eq!(csc.to_dense(), m.to_dense());
        assert_eq!(csc.to_csr(), m);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = figure1();
        assert_eq!(m.transpose().transpose(), m);
        let t = m.transpose();
        assert_eq!(t.shape(), Shape::new(4, 3));
        assert_eq!(t.to_dense().get(1, 0), 2.0); // (0,1) -> (1,0)
    }

    #[test]
    fn storage_matches_section2_model() {
        // §2: CSR of an N x N matrix costs 8·nnz + 4·(N+1) bytes.
        let m = figure1();
        let expected = 8 * m.nnz() + 4 * (m.shape().nrows + 1);
        assert_eq!(m.storage_bytes(), expected);
    }

    #[test]
    fn nnz_count_vectors() {
        let m = figure1();
        assert_eq!(m.row_nnz_counts(), vec![3, 0, 2]);
        assert_eq!(m.col_nnz_counts(), vec![1, 2, 1, 1]);
    }

    #[test]
    fn empty_matrix_ok() {
        let m = Csr::new(0, 0, vec![0], vec![], vec![]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.nonzero_rows(), 0);
    }
}
