//! Matrix Market (`.mtx`) coordinate-format reader/writer.
//!
//! The paper notes (§4.1) that the "widely-used Matrix Market format uses
//! coordinate list (COO) format", so deserialization lands in [`Coo`] and
//! can be re-encoded to CSC as cheaply as to CSR. Supports the
//! `coordinate` layout with `real`/`integer`/`pattern` fields and
//! `general`/`symmetric`/`skew-symmetric` symmetry groups.

use crate::{Coo, FormatError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field of a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketField {
    /// Floating-point values.
    Real,
    /// Integer values (parsed into `f32`).
    Integer,
    /// Structure only; entries carry no value token. Values default to 1.0,
    /// matching the paper's practice of assigning random/synthetic values to
    /// connectivity-only matrices (§5.1) — callers may overwrite them.
    Pattern,
}

/// Symmetry group of a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(i,j)` implies `(j,i)` with the same value.
    Symmetric,
    /// Lower triangle stored; `(i,j)` implies `(j,i)` with negated value.
    SkewSymmetric,
}

/// Parsed Matrix Market header information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketHeader {
    /// Value field.
    pub field: MarketField,
    /// Symmetry group.
    pub symmetry: MarketSymmetry,
}

/// Read a Matrix Market stream into a canonical [`Coo`].
pub fn read_market<R: Read>(reader: R) -> Result<(Coo, MarketHeader), FormatError> {
    let mut lines = BufReader::new(reader).lines();
    let header_line = lines
        .next()
        .ok_or(FormatError::Parse {
            line: 1,
            detail: "empty stream".into(),
        })?
        .map_err(FormatError::from)?;
    let header = parse_header(&header_line)?;

    let mut lineno = 1usize;
    // Skip comments to the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or(FormatError::Parse {
                line: lineno,
                detail: "missing size line".into(),
            })?
            .map_err(FormatError::from)?;
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('%') {
            break trimmed.to_string();
        }
    };
    let mut it = size_line.split_whitespace();
    let nrows: usize = parse_tok(it.next(), lineno, "rows")?;
    let ncols: usize = parse_tok(it.next(), lineno, "cols")?;
    let nnz: usize = parse_tok(it.next(), lineno, "nnz")?;

    let mut coo = Coo::new(nrows, ncols)?;
    let mut read = 0usize;
    // Duplicate detection: Matrix Market leaves duplicate-coordinate
    // semantics to the consumer, so accepting them would silently commit
    // to one interpretation. Track every stored coordinate (including
    // symmetry-expanded mirrors) and reject the second occurrence.
    let mut seen = std::collections::BTreeSet::<(u32, u32)>::new();
    for line in lines {
        let line = line.map_err(FormatError::from)?;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = parse_tok(it.next(), lineno, "row")?;
        let c: usize = parse_tok(it.next(), lineno, "col")?;
        if r == 0 || c == 0 {
            return Err(FormatError::Parse {
                line: lineno,
                detail: "Matrix Market indices are 1-based".into(),
            });
        }
        let v: f32 = match header.field {
            MarketField::Pattern => 1.0,
            _ => {
                let token = it.next();
                let v: f32 = parse_tok(token, lineno, "value")?;
                if !v.is_finite() {
                    return Err(FormatError::NonFiniteValue {
                        line: lineno,
                        token: token.unwrap_or_default().to_string(),
                    });
                }
                v
            }
        };
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        if !seen.insert((r0, c0)) {
            return Err(FormatError::DuplicateEntry {
                line: lineno,
                row: r0,
                col: c0,
            });
        }
        coo.push(r0, c0, v).map_err(|e| FormatError::Parse {
            line: lineno,
            detail: e.to_string(),
        })?;
        match header.symmetry {
            MarketSymmetry::General => {}
            MarketSymmetry::Symmetric | MarketSymmetry::SkewSymmetric if r0 != c0 => {
                if !seen.insert((c0, r0)) {
                    return Err(FormatError::DuplicateEntry {
                        line: lineno,
                        row: c0,
                        col: r0,
                    });
                }
                let mirrored = if header.symmetry == MarketSymmetry::Symmetric {
                    v
                } else {
                    -v
                };
                coo.push(c0, r0, mirrored).map_err(|e| FormatError::Parse {
                    line: lineno,
                    detail: e.to_string(),
                })?;
            }
            _ => {}
        }
        read += 1;
    }
    if read != nnz {
        return Err(FormatError::Parse {
            line: lineno,
            detail: format!("expected {nnz} entries, found {read}"),
        });
    }
    coo.canonicalize();
    Ok((coo, header))
}

/// Read a `.mtx` file from disk.
pub fn read_market_file(path: impl AsRef<Path>) -> Result<(Coo, MarketHeader), FormatError> {
    let file = std::fs::File::open(path)?;
    read_market(file)
}

/// Write a COO matrix as a `general real` coordinate Matrix Market stream.
pub fn write_market<W: Write>(writer: &mut W, coo: &Coo) -> Result<(), FormatError> {
    use crate::SparseMatrix;
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by spmm-nmt")?;
    let shape = coo.shape();
    writeln!(writer, "{} {} {}", shape.nrows, shape.ncols, coo.nnz())?;
    for e in coo.entries() {
        writeln!(writer, "{} {} {}", e.row + 1, e.col + 1, e.val)?;
    }
    Ok(())
}

/// Write a COO matrix to a `.mtx` file on disk.
pub fn write_market_file(path: impl AsRef<Path>, coo: &Coo) -> Result<(), FormatError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_market(&mut file, coo)
}

fn parse_header(line: &str) -> Result<MarketHeader, FormatError> {
    let lower = line.to_ascii_lowercase();
    let toks: Vec<&str> = lower.split_whitespace().collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(FormatError::Parse {
            line: 1,
            detail: format!("bad header: {line:?}"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(FormatError::Parse {
            line: 1,
            detail: format!("unsupported layout {:?} (only coordinate)", toks[2]),
        });
    }
    let field = match toks[3] {
        "real" => MarketField::Real,
        "integer" => MarketField::Integer,
        "pattern" => MarketField::Pattern,
        other => {
            return Err(FormatError::Parse {
                line: 1,
                detail: format!("unsupported field {other:?}"),
            })
        }
    };
    let symmetry = match toks[4] {
        "general" => MarketSymmetry::General,
        "symmetric" => MarketSymmetry::Symmetric,
        "skew-symmetric" => MarketSymmetry::SkewSymmetric,
        other => {
            return Err(FormatError::Parse {
                line: 1,
                detail: format!("unsupported symmetry {other:?}"),
            })
        }
    };
    Ok(MarketHeader { field, symmetry })
}

fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, FormatError> {
    tok.ok_or_else(|| FormatError::Parse {
        line,
        detail: format!("missing {what}"),
    })?
    .parse()
    .map_err(|_| FormatError::Parse {
        line,
        detail: format!("bad {what} token"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMatrix;

    #[test]
    fn read_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 1.5\n\
                    3 4 -2.0\n\
                    2 2 0.25\n";
        let (coo, header) = read_market(text.as_bytes()).unwrap();
        assert_eq!(header.field, MarketField::Real);
        assert_eq!(header.symmetry, MarketSymmetry::General);
        assert_eq!(coo.nnz(), 3);
        let d = coo.to_dense();
        assert_eq!(d.get(0, 0), 1.5);
        assert_eq!(d.get(2, 3), -2.0);
        assert_eq!(d.get(1, 1), 0.25);
    }

    #[test]
    fn read_pattern_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let (coo, _) = read_market(text.as_bytes()).unwrap();
        // (2,1) expands to (1,2); diagonal (3,3) does not duplicate.
        assert_eq!(coo.nnz(), 3);
        let d = coo.to_dense();
        assert_eq!(d.get(1, 0), 1.0);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(2, 2), 1.0);
    }

    #[test]
    fn read_skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 5.0\n";
        let (coo, _) = read_market(text.as_bytes()).unwrap();
        let d = coo.to_dense();
        assert_eq!(d.get(1, 0), 5.0);
        assert_eq!(d.get(0, 1), -5.0);
    }

    #[test]
    fn write_read_roundtrip() {
        let coo = Coo::from_triplets(4, 5, &[0, 3, 1], &[4, 0, 2], &[1.0, 2.5, -3.0]).unwrap();
        let mut buf = Vec::new();
        write_market(&mut buf, &coo).unwrap();
        let (back, _) = read_market(buf.as_slice()).unwrap();
        assert_eq!(back.to_dense(), coo.to_dense());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n0 1 2.0\n";
        assert!(read_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header_and_counts() {
        assert!(read_market("garbage\n".as_bytes()).is_err());
        assert!(read_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_market(short.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_market(text.as_bytes()).unwrap_err();
        assert!(matches!(err, FormatError::Parse { .. }));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let text = format!(
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 {bad}\n"
            );
            let err = read_market(text.as_bytes()).unwrap_err();
            match err {
                FormatError::NonFiniteValue { line, ref token } => {
                    assert_eq!(line, 3, "line attribution for {bad}");
                    assert_eq!(token, bad);
                }
                other => panic!("expected NonFiniteValue for {bad}, got {other:?}"),
            }
        }
        // Finite scientific notation still parses.
        let ok = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5e-3\n";
        assert!(read_market(ok.as_bytes()).is_ok());
    }

    #[test]
    fn rejects_duplicate_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 3\n1 1 1.0\n2 3 2.0\n1 1 4.0\n";
        let err = read_market(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            FormatError::DuplicateEntry {
                line: 5,
                row: 0,
                col: 0
            }
        );
        assert!(err.to_string().contains("duplicate entry"));
    }

    #[test]
    fn rejects_duplicate_via_symmetric_mirror() {
        // (2,1) expands to (1,2); explicitly storing (1,2) as well is the
        // classic both-triangles-in-a-symmetric-file mistake.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n2 1 1.0\n1 2 1.0\n";
        let err = read_market(text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, FormatError::DuplicateEntry { line: 4, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_overflowing_dimensions() {
        let big = u32::MAX as u64 + 1;
        let text =
            format!("%%MatrixMarket matrix coordinate real general\n{big} 2 0\n");
        let err = read_market(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            FormatError::DimensionOverflow {
                dim: big as usize
            }
        );
        // A dimension too large even for usize is a parse error, not a panic.
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    99999999999999999999999999 2 0\n";
        assert!(matches!(
            read_market(text.as_bytes()).unwrap_err(),
            FormatError::Parse { .. }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nmt_market_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let coo = Coo::from_triplets(2, 2, &[0, 1], &[1, 0], &[3.0, 4.0]).unwrap();
        write_market_file(&path, &coo).unwrap();
        let (back, _) = read_market_file(&path).unwrap();
        assert_eq!(back.to_dense(), coo.to_dense());
        std::fs::remove_file(&path).ok();
    }
}
