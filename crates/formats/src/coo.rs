//! Coordinate-list (COO) format — the interchange/deserialization format.
//!
//! Matrix Market files (the paper's input path, §4.1) are coordinate lists;
//! every other format in this crate can be built from a [`Coo`].

use crate::{
    FormatError, Index, Shape, SparseMatrix, StorageSize, Value, INDEX_BYTES, VALUE_BYTES,
};

/// One explicit entry of a COO matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CooEntry {
    /// Row index.
    pub row: Index,
    /// Column index.
    pub col: Index,
    /// Stored value.
    pub val: Value,
}

impl CooEntry {
    /// Convenience constructor.
    pub fn new(row: Index, col: Index, val: Value) -> Self {
        Self { row, col, val }
    }
}

/// Coordinate-list sparse matrix.
///
/// Entries may be in any order and may contain duplicates until
/// [`Coo::canonicalize`] is called (which sorts row-major and sums
/// duplicates, matching Matrix Market semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<CooEntry>,
}

impl Coo {
    /// Create an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Result<Self, FormatError> {
        check_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            entries: Vec::new(),
        })
    }

    /// Build from a list of entries, validating bounds.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<CooEntry>,
    ) -> Result<Self, FormatError> {
        check_dims(nrows, ncols)?;
        for e in &entries {
            if e.row as usize >= nrows {
                return Err(FormatError::IndexOutOfBounds {
                    axis: "row",
                    index: e.row,
                    bound: nrows,
                });
            }
            if e.col as usize >= ncols {
                return Err(FormatError::IndexOutOfBounds {
                    axis: "col",
                    index: e.col,
                    bound: ncols,
                });
            }
        }
        Ok(Self {
            nrows,
            ncols,
            entries,
        })
    }

    /// Build from parallel `(row, col, value)` triplet slices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[Index],
        cols: &[Index],
        vals: &[Value],
    ) -> Result<Self, FormatError> {
        if rows.len() != cols.len() {
            return Err(FormatError::LengthMismatch {
                expected: rows.len(),
                found: cols.len(),
                name: "cols",
            });
        }
        if rows.len() != vals.len() {
            return Err(FormatError::LengthMismatch {
                expected: rows.len(),
                found: vals.len(),
                name: "vals",
            });
        }
        let entries = rows
            .iter()
            .zip(cols)
            .zip(vals)
            .map(|((&r, &c), &v)| CooEntry::new(r, c, v))
            .collect();
        Self::from_entries(nrows, ncols, entries)
    }

    /// Push one entry (bounds-checked).
    pub fn push(&mut self, row: Index, col: Index, val: Value) -> Result<(), FormatError> {
        if row as usize >= self.nrows {
            return Err(FormatError::IndexOutOfBounds {
                axis: "row",
                index: row,
                bound: self.nrows,
            });
        }
        if col as usize >= self.ncols {
            return Err(FormatError::IndexOutOfBounds {
                axis: "col",
                index: col,
                bound: self.ncols,
            });
        }
        self.entries.push(CooEntry::new(row, col, val));
        Ok(())
    }

    /// The entry list.
    pub fn entries(&self) -> &[CooEntry] {
        &self.entries
    }

    /// Sort row-major (row, then column) and merge duplicate coordinates by
    /// summing their values. Entries that sum to exactly zero are kept (they
    /// remain "explicit zeros", as in SuiteSparse pattern matrices).
    pub fn canonicalize(&mut self) {
        self.entries.sort_unstable_by_key(|a| (a.row, a.col));
        let mut out: Vec<CooEntry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.row == e.row && last.col == e.col => last.val += e.val,
                _ => out.push(e),
            }
        }
        self.entries = out;
    }

    /// True when entries are sorted row-major with no duplicate coordinates.
    pub fn is_canonical(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col))
    }

    /// Transpose: swaps rows and columns (entries stay unsorted).
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self
                .entries
                .iter()
                .map(|e| CooEntry::new(e.col, e.row, e.val))
                .collect(),
        }
    }

    /// Densify into a [`crate::DenseMatrix`] (for small test matrices).
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.nrows, self.ncols);
        for e in &self.entries {
            d.add(e.row as usize, e.col as usize, e.val);
        }
        d
    }
}

pub(crate) fn check_dims(nrows: usize, ncols: usize) -> Result<(), FormatError> {
    if nrows > u32::MAX as usize {
        return Err(FormatError::DimensionOverflow { dim: nrows });
    }
    if ncols > u32::MAX as usize {
        return Err(FormatError::DimensionOverflow { dim: ncols });
    }
    Ok(())
}

impl SparseMatrix for Coo {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }
}

impl StorageSize for Coo {
    fn metadata_bytes(&self) -> usize {
        // row + col index per entry.
        self.entries.len() * 2 * INDEX_BYTES
    }

    fn data_bytes(&self) -> usize {
        self.entries.len() * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // The 3x4 matrix of the paper's Figure 1:
        //   row0: a b c .      row1: . . . .      row2: . x . y
        Coo::from_triplets(
            3,
            4,
            &[0, 0, 0, 2, 2],
            &[0, 1, 2, 1, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn basic_properties() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.shape(), Shape::new(3, 4));
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_checked() {
        assert!(Coo::from_triplets(2, 2, &[2], &[0], &[1.0]).is_err());
        assert!(Coo::from_triplets(2, 2, &[0], &[2], &[1.0]).is_err());
        let mut m = Coo::new(2, 2).unwrap();
        assert!(m.push(0, 5, 1.0).is_err());
        assert!(m.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn triplet_length_mismatch_rejected() {
        assert!(Coo::from_triplets(2, 2, &[0, 1], &[0], &[1.0, 2.0]).is_err());
        assert!(Coo::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0]).is_err());
    }

    #[test]
    fn canonicalize_sorts_and_merges() {
        let mut m =
            Coo::from_triplets(3, 3, &[2, 0, 2, 0], &[1, 2, 1, 0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(!m.is_canonical());
        m.canonicalize();
        assert!(m.is_canonical());
        assert_eq!(m.nnz(), 3);
        // (2,1) merged: 1 + 3 = 4.
        let e = m
            .entries()
            .iter()
            .find(|e| e.row == 2 && e.col == 1)
            .unwrap();
        assert_eq!(e.val, 4.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), Shape::new(4, 3));
        let tt = t.transpose();
        assert_eq!(tt.entries().len(), m.entries().len());
        assert_eq!(tt.to_dense(), m.to_dense());
    }

    #[test]
    fn to_dense_sums_duplicates() {
        let m = Coo::from_triplets(2, 2, &[0, 0], &[0, 0], &[1.5, 2.5]).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(0, 0), 4.0);
    }

    #[test]
    fn storage_accounting() {
        let m = sample();
        assert_eq!(m.metadata_bytes(), 5 * 8);
        assert_eq!(m.data_bytes(), 5 * 4);
        assert_eq!(m.storage_bytes(), 5 * 12);
    }

    #[test]
    fn dimension_overflow_rejected() {
        assert!(Coo::new(u32::MAX as usize + 1, 4).is_err());
    }
}
