//! Proptest strategies over the format zoo, plus deterministic corruption
//! helpers for negative property tests.
//!
//! The positive strategies ([`coo_strategy`], [`csr_strategy`],
//! [`csc_strategy`], [`tiled_dcsr_strategy`]) generate arbitrary *valid*
//! matrices — every value they produce must pass its format's
//! `validate()`. The [`Corruption`] helpers take a valid matrix and break
//! exactly one structural invariant, so tests can assert the validators
//! reject every corrupted variant with a typed [`FormatError`] and never
//! panic. Corruptions are deterministic functions of the input (no RNG):
//! the same matrix corrupted the same way yields the same rejection.

use crate::{Coo, Csc, Csr, DcsrTile, FormatError, SparseMatrix, TiledDcsr};
use proptest::Strategy;

/// Strategy: a canonical COO matrix with dims in `[1, 64]` and up to 200
/// entries (duplicates merged by canonicalization).
pub fn coo_strategy() -> impl Strategy<Value = Coo> {
    (1usize..=64, 1usize..=64).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows as u32, 0..ncols as u32, 1i32..100);
        proptest::collection::vec(entry, 0..200).prop_map(move |entries| {
            // nmt-lint: allow(panic) — dims and indices are drawn in bounds
            let mut coo = Coo::new(nrows, ncols).expect("dims within u32 space");
            for (r, c, v) in entries {
                // Strictly positive values: duplicate coordinates merge by
                // summing and must not cancel to an explicit zero.
                // nmt-lint: allow(panic) — indices drawn below the dims
                coo.push(r, c, v as f32).expect("entry in bounds");
            }
            coo.canonicalize();
            coo
        })
    })
}

/// Strategy: an arbitrary valid [`Csr`].
pub fn csr_strategy() -> impl Strategy<Value = Csr> {
    coo_strategy().prop_map(|coo| Csr::from_coo(&coo))
}

/// Strategy: an arbitrary valid [`Csc`].
pub fn csc_strategy() -> impl Strategy<Value = Csc> {
    coo_strategy().prop_map(|coo| Csc::from_coo(&coo))
}

/// Strategy: an arbitrary valid [`TiledDcsr`] with tile edges in `[1, 32]`.
pub fn tiled_dcsr_strategy() -> impl Strategy<Value = TiledDcsr> {
    (csr_strategy(), 1usize..=32, 1usize..=32).prop_map(|(csr, tile_w, tile_h)| {
        // nmt-lint: allow(panic) — nonzero tile edges over a valid CSR cannot fail
        TiledDcsr::from_csr(&csr, tile_w, tile_h).expect("valid tiling parameters")
    })
}

/// One way to break a structurally valid matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Swap two index entries so a sorted run becomes unsorted.
    ShuffledIndices,
    /// Drop the last pointer-array entry (wrong length).
    TruncatedPtr,
    /// Bump the final pointer past nnz (dangling span).
    DanglingPtr,
    /// Push one stored index past its dimension bound.
    OutOfBoundsIndex,
}

impl Corruption {
    /// Every corruption kind, for exhaustive sweeps.
    pub const ALL: [Corruption; 4] = [
        Corruption::ShuffledIndices,
        Corruption::TruncatedPtr,
        Corruption::DanglingPtr,
        Corruption::OutOfBoundsIndex,
    ];
}

/// Apply `kind` to a copy of `csr`'s raw arrays and re-run the validating
/// constructor. Returns `None` when the matrix is too small to express the
/// corruption (e.g. no row has two entries to shuffle), otherwise the
/// constructor's verdict — which a correct validator makes `Err` with a
/// typed [`FormatError`], never a panic.
pub fn corrupt_csr(csr: &Csr, kind: Corruption) -> Option<Result<Csr, FormatError>> {
    let shape = csr.shape();
    let (rowptr, colidx, values) = corrupt_csr_parts(csr, kind)?;
    Some(Csr::new(shape.nrows, shape.ncols, rowptr, colidx, values))
}

/// The raw-array form of [`corrupt_csr`]: apply `kind` to a copy of
/// `csr`'s arrays and return them *without* re-validating, as
/// `(rowptr, colidx, values)`. Negative tests that must observe the
/// corrupted content itself — e.g. proving a content fingerprint moves
/// under every mutation even though the validating constructor would
/// reject it — use this; [`corrupt_csr`] layers the constructor verdict
/// on top.
pub fn corrupt_csr_parts(
    csr: &Csr,
    kind: Corruption,
) -> Option<(Vec<u32>, Vec<u32>, Vec<f32>)> {
    let shape = csr.shape();
    let mut rowptr = csr.rowptr().to_vec();
    let mut colidx = csr.colidx().to_vec();
    let values = csr.values().to_vec();
    match kind {
        Corruption::ShuffledIndices => {
            let row = (0..shape.nrows).find(|&r| csr.row_nnz(r) >= 2)?;
            let lo = rowptr[row] as usize;
            colidx.swap(lo, lo + 1);
        }
        Corruption::TruncatedPtr => {
            rowptr.pop()?;
        }
        Corruption::DanglingPtr => {
            *rowptr.last_mut()? += 1;
        }
        Corruption::OutOfBoundsIndex => {
            if colidx.is_empty() {
                return None;
            }
            colidx[0] = shape.ncols as u32;
        }
    }
    Some((rowptr, colidx, values))
}

/// [`corrupt_csr`]'s column-major mirror for [`Csc`].
pub fn corrupt_csc(csc: &Csc, kind: Corruption) -> Option<Result<Csc, FormatError>> {
    let shape = csc.shape();
    let mut colptr = csc.colptr().to_vec();
    let mut rowidx = csc.rowidx().to_vec();
    let values = csc.values().to_vec();
    match kind {
        Corruption::ShuffledIndices => {
            let col = (0..shape.ncols)
                .find(|&c| (colptr[c + 1] - colptr[c]) >= 2)?;
            let lo = colptr[col] as usize;
            rowidx.swap(lo, lo + 1);
        }
        Corruption::TruncatedPtr => {
            colptr.pop()?;
        }
        Corruption::DanglingPtr => {
            *colptr.last_mut()? += 1;
        }
        Corruption::OutOfBoundsIndex => {
            if rowidx.is_empty() {
                return None;
            }
            rowidx[0] = shape.nrows as u32;
        }
    }
    Some(Csc::new(shape.nrows, shape.ncols, colptr, rowidx, values))
}

/// Apply `kind` to a copy of one [`DcsrTile`] and return `validate()`'s
/// verdict (`None` when the tile cannot express the corruption).
pub fn corrupt_tile(tile: &DcsrTile, kind: Corruption) -> Option<Result<(), FormatError>> {
    let mut t = tile.clone();
    match kind {
        Corruption::ShuffledIndices => {
            if t.rowidx.len() >= 2 {
                t.rowidx.swap(0, 1);
            } else {
                let seg =
                    (0..t.rowidx.len()).find(|&i| (t.rowptr[i + 1] - t.rowptr[i]) >= 2)?;
                let lo = t.rowptr[seg] as usize;
                t.colidx.swap(lo, lo + 1);
            }
        }
        Corruption::TruncatedPtr => {
            t.rowptr.pop()?;
        }
        Corruption::DanglingPtr => {
            *t.rowptr.last_mut()? += 1;
        }
        Corruption::OutOfBoundsIndex => {
            if t.rowidx.is_empty() {
                return None;
            }
            t.rowidx[0] = t.height as u32;
        }
    }
    Some(t.validate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn generated_matrices_validate(csr in csr_strategy(), csc in csc_strategy()) {
            prop_assert!(csr.validate().is_ok());
            prop_assert!(csc.validate().is_ok());
        }

        #[test]
        fn generated_tilings_validate(tdcsr in tiled_dcsr_strategy()) {
            prop_assert!(tdcsr.validate().is_ok());
            for (_, _, tile) in tdcsr.iter_tiles() {
                prop_assert!(tile.validate().is_ok());
            }
        }

        #[test]
        fn corruptions_are_always_rejected(csr in csr_strategy()) {
            let csc = csr.to_csc();
            for kind in Corruption::ALL {
                if let Some(verdict) = corrupt_csr(&csr, kind) {
                    prop_assert!(verdict.is_err(), "CSR accepted {kind:?}");
                }
                if let Some(verdict) = corrupt_csc(&csc, kind) {
                    prop_assert!(verdict.is_err(), "CSC accepted {kind:?}");
                }
            }
        }
    }

    #[test]
    fn corruption_kinds_yield_expected_variants() {
        // A concrete anchor so variant drift is visible, not just "some Err".
        let csr = Csr::new(
            2,
            4,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        assert!(matches!(
            corrupt_csr(&csr, Corruption::ShuffledIndices),
            Some(Err(FormatError::NotCanonical { .. }))
        ));
        assert!(matches!(
            corrupt_csr(&csr, Corruption::TruncatedPtr),
            Some(Err(FormatError::LengthMismatch { .. }))
        ));
        assert!(matches!(
            corrupt_csr(&csr, Corruption::DanglingPtr),
            Some(Err(FormatError::MalformedPointerArray { .. }))
        ));
        assert!(matches!(
            corrupt_csr(&csr, Corruption::OutOfBoundsIndex),
            Some(Err(FormatError::IndexOutOfBounds { .. }))
        ));
    }
}
