//! Densified CSR (DCSR) — CSR with empty rows compressed away.
//!
//! DCSR (Hong et al., cited as \[12\] in the paper) adds one level of
//! indirection: a `rowidx` vector listing only the rows that contain at
//! least one non-zero. `rowptr` then has one entry per *non-empty* row
//! instead of one per matrix row, which removes the redundant row pointers
//! that dominate tiled-CSR strips (Figure 6) and lets warps be devoted
//! exclusively to rows with actual work (Figure 7).

use crate::coo::check_dims;
use crate::{
    Csr, DenseMatrix, FormatError, Index, Shape, SparseMatrix, StorageSize, Value, INDEX_BYTES,
    VALUE_BYTES,
};

/// Densified CSR sparse matrix.
///
/// Invariants: `rowidx` strictly increasing (only non-empty rows, sorted),
/// `rowptr.len() == rowidx.len() + 1`, and every represented row has at
/// least one entry (otherwise it would not be "densified").
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsr {
    nrows: usize,
    ncols: usize,
    rowidx: Vec<Index>,
    rowptr: Vec<Index>,
    colidx: Vec<Index>,
    values: Vec<Value>,
}

impl Dcsr {
    /// Build from raw arrays, checking all DCSR invariants via
    /// [`Dcsr::validate`].
    pub fn new(
        nrows: usize,
        ncols: usize,
        rowidx: Vec<Index>,
        rowptr: Vec<Index>,
        colidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        let m = Self {
            nrows,
            ncols,
            rowidx,
            rowptr,
            colidx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Build without per-call validation. Callers guarantee the invariants
    /// structurally (densification of an already-valid CSR); debug builds
    /// re-check them at every conversion boundary.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowidx: Vec<Index>,
        rowptr: Vec<Index>,
        colidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Self {
        let m = Self {
            nrows,
            ncols,
            rowidx,
            rowptr,
            colidx,
            values,
        };
        debug_assert!(
            m.validate().is_ok(),
            "unchecked DCSR constructor violated invariants: {:?}",
            m.validate().err()
        );
        m
    }

    /// Check every structural DCSR invariant: strictly increasing in-bounds
    /// `rowidx`, strictly increasing `rowptr` spanning `0..nnz` (densified
    /// rows may not be empty), sorted in-bounds columns per row.
    pub fn validate(&self) -> Result<(), FormatError> {
        check_dims(self.nrows, self.ncols)?;
        if self.rowptr.len() != self.rowidx.len() + 1 {
            return Err(FormatError::LengthMismatch {
                expected: self.rowidx.len() + 1,
                found: self.rowptr.len(),
                name: "rowptr",
            });
        }
        if self.colidx.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.colidx.len(),
                found: self.values.len(),
                name: "values",
            });
        }
        if self.rowptr.first().copied().unwrap_or(0) != 0 {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: "must start at 0".into(),
            });
        }
        if self.rowptr.last().copied().unwrap_or(0) as usize != self.colidx.len() {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: "last entry must equal nnz".into(),
            });
        }
        // Every densified row must be non-empty: strictly increasing rowptr.
        if self.rowptr.windows(2).any(|w| w[0] >= w[1]) && !self.colidx.is_empty() {
            return Err(FormatError::MalformedPointerArray {
                name: "rowptr",
                detail: "densified rows must be non-empty (strictly increasing rowptr)".into(),
            });
        }
        if self.rowidx.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotCanonical {
                detail: "rowidx must be strictly increasing".into(),
            });
        }
        if let Some(&last) = self.rowidx.last() {
            if last as usize >= self.nrows {
                return Err(FormatError::IndexOutOfBounds {
                    axis: "row",
                    index: last,
                    bound: self.nrows,
                });
            }
        }
        for (i, w) in self.rowptr.windows(2).enumerate() {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            let row_cols = &self.colidx[lo..hi];
            for &c in row_cols {
                if c as usize >= self.ncols {
                    return Err(FormatError::IndexOutOfBounds {
                        axis: "col",
                        index: c,
                        bound: self.ncols,
                    });
                }
            }
            if row_cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotCanonical {
                    detail: format!("densified row {i} has unsorted or duplicate columns"),
                });
            }
        }
        Ok(())
    }

    /// Densify a CSR matrix: drop its empty rows into the `rowidx`
    /// indirection. This is the "straightforward" offline CSR→DCSR
    /// conversion the paper permits for the C-stationary baseline (§5.2).
    pub fn from_csr(csr: &Csr) -> Self {
        let shape = csr.shape();
        let mut rowidx = Vec::new();
        let mut rowptr = vec![0 as Index];
        let mut colidx = Vec::with_capacity(csr.nnz());
        let mut values = Vec::with_capacity(csr.nnz());
        for r in 0..shape.nrows {
            let (cols, vals) = csr.row(r);
            if cols.is_empty() {
                continue;
            }
            rowidx.push(r as Index);
            colidx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            rowptr.push(colidx.len() as Index);
        }
        Self::from_parts_unchecked(shape.nrows, shape.ncols, rowidx, rowptr, colidx, values)
    }

    /// Expand back to CSR (reinstating empty rows).
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0 as Index; self.nrows + 1];
        for (i, &r) in self.rowidx.iter().enumerate() {
            rowptr[r as usize + 1] = self.rowptr[i + 1] - self.rowptr[i];
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        Csr::from_parts_unchecked(
            self.nrows,
            self.ncols,
            rowptr,
            self.colidx.clone(),
            self.values.clone(),
        )
    }

    /// Row indices of the non-empty rows (the DCSR indirection vector).
    pub fn rowidx(&self) -> &[Index] {
        &self.rowidx
    }

    /// Row pointers over the densified rows (`rowidx.len() + 1` entries).
    pub fn rowptr(&self) -> &[Index] {
        &self.rowptr
    }

    /// Column index array.
    pub fn colidx(&self) -> &[Index] {
        &self.colidx
    }

    /// Value array.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of non-empty rows stored (`n_nnzrow`).
    pub fn num_dense_rows(&self) -> usize {
        self.rowidx.len()
    }

    /// Consume the matrix, returning its four arrays
    /// `(rowidx, rowptr, colidx, values)` — the recycling path: buffer
    /// pools want the allocations back once an artifact is evicted.
    pub fn into_parts(self) -> (Vec<Index>, Vec<Index>, Vec<Index>, Vec<Value>) {
        (self.rowidx, self.rowptr, self.colidx, self.values)
    }

    /// The `i`-th densified row: `(global row index, columns, values)`.
    #[inline]
    pub fn dense_row(&self, i: usize) -> (Index, &[Index], &[Value]) {
        let (lo, hi) = (self.rowptr[i] as usize, self.rowptr[i + 1] as usize);
        (self.rowidx[i], &self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Iterate `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.rowidx.len()).flat_map(move |i| {
            let (r, cols, vals) = self.dense_row(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Densify into a dense matrix (small matrices / tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }
}

impl SparseMatrix for Dcsr {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.colidx.len()
    }
}

impl StorageSize for Dcsr {
    /// colidx + rowptr + the extra `rowidx` metadata ("paying the additional
    /// metadata cost for row indices to specify the non-zero rows", §3.2).
    fn metadata_bytes(&self) -> usize {
        (self.colidx.len() + self.rowptr.len() + self.rowidx.len()) * INDEX_BYTES
    }

    fn data_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// Figure 6's strip: 16 rows, only rows 3, 9, 10, 12 are non-empty.
    fn figure6_csr() -> Csr {
        let coo = Coo::from_triplets(
            16,
            4,
            &[3, 9, 10, 10, 12],
            &[0, 1, 0, 2, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn densify_keeps_only_nonzero_rows() {
        let dcsr = Dcsr::from_csr(&figure6_csr());
        assert_eq!(dcsr.rowidx(), &[3, 9, 10, 12]);
        assert_eq!(dcsr.num_dense_rows(), 4);
        assert_eq!(dcsr.nnz(), 5);
        // rowptr has one entry per non-empty row + 1, not nrows + 1.
        assert_eq!(dcsr.rowptr().len(), 5);
    }

    #[test]
    fn csr_roundtrip() {
        let csr = figure6_csr();
        assert_eq!(Dcsr::from_csr(&csr).to_csr(), csr);
    }

    #[test]
    fn dense_row_access() {
        let dcsr = Dcsr::from_csr(&figure6_csr());
        let (r, cols, vals) = dcsr.dense_row(2);
        assert_eq!(r, 10);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
    }

    #[test]
    fn metadata_smaller_than_csr_when_sparse_rows() {
        // Figure 6's point: CSR pays 17 rowptr entries for 4 useful rows.
        let csr = figure6_csr();
        let dcsr = Dcsr::from_csr(&csr);
        assert!(dcsr.metadata_bytes() < csr.metadata_bytes());
        // CSR: (5 + 17) * 4 = 88; DCSR: (5 + 5 + 4) * 4 = 56.
        assert_eq!(csr.metadata_bytes(), 88);
        assert_eq!(dcsr.metadata_bytes(), 56);
    }

    #[test]
    fn metadata_larger_than_csr_when_all_rows_full() {
        // With no empty rows the rowidx indirection is pure overhead.
        let coo = Coo::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0; 3]).unwrap();
        let csr = Csr::from_coo(&coo);
        let dcsr = Dcsr::from_csr(&csr);
        assert!(dcsr.metadata_bytes() > csr.metadata_bytes());
    }

    #[test]
    fn validation_rejects_empty_densified_rows() {
        // rowptr must strictly increase: a densified row may not be empty.
        assert!(Dcsr::new(4, 4, vec![0, 2], vec![0, 0, 1], vec![1], vec![1.0]).is_err());
    }

    #[test]
    fn validation_rejects_unsorted_rowidx() {
        assert!(Dcsr::new(4, 4, vec![2, 0], vec![0, 1, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn validation_rejects_out_of_bounds() {
        assert!(Dcsr::new(2, 2, vec![5], vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Dcsr::new(2, 2, vec![0], vec![0, 1], vec![9], vec![1.0]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let d = Dcsr::new(4, 4, vec![], vec![0], vec![], vec![]).unwrap();
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.num_dense_rows(), 0);
        assert_eq!(d.to_csr().nnz(), 0);
    }

    #[test]
    fn iter_matches_csr_iter() {
        let csr = figure6_csr();
        let dcsr = Dcsr::from_csr(&csr);
        let a: Vec<_> = csr.iter().collect();
        let b: Vec<_> = dcsr.iter().collect();
        assert_eq!(a, b);
    }
}
