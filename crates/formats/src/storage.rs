//! Storage-footprint accounting.
//!
//! The paper's Figures 8 and 9 compare formats purely by bytes: metadata
//! (pointer and index arrays) versus data (the values). Every sparse format
//! implements [`StorageSize`] so these figures regenerate from the same
//! accounting used everywhere else.

/// Byte-level storage accounting for a sparse format.
pub trait StorageSize {
    /// Bytes of structural metadata: row/column pointer arrays and
    /// row/column index arrays — everything except the values.
    fn metadata_bytes(&self) -> usize;

    /// Bytes of value payload.
    fn data_bytes(&self) -> usize;

    /// Total storage footprint: metadata plus data.
    fn storage_bytes(&self) -> usize {
        self.metadata_bytes() + self.data_bytes()
    }
}

/// Ratio of two footprints as used in Figures 8/9 (`size(x)/size(y)`),
/// returning `f64::INFINITY` when the denominator is zero.
pub fn size_ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        f64::INFINITY
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(usize, usize);
    impl StorageSize for Fake {
        fn metadata_bytes(&self) -> usize {
            self.0
        }
        fn data_bytes(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn total_is_sum() {
        assert_eq!(Fake(10, 32).storage_bytes(), 42);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(size_ratio(10, 5), 2.0);
        assert!(size_ratio(1, 0).is_infinite());
    }
}
