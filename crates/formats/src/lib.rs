//! Sparse matrix storage formats for the near-memory-transform SpMM system.
//!
//! This crate provides the complete format zoo used by the SC'19 paper
//! *Near-Memory Data Transformation for Efficient Sparse Matrix Multi-Vector
//! Multiplication*:
//!
//! * [`Coo`] — coordinate list, the deserialization/interchange format
//!   (Matrix Market files decode to this).
//! * [`Csr`] — compressed sparse row, the community-standard storage format
//!   and the cuSPARSE baseline's input.
//! * [`Csc`] — compressed sparse column, the storage- and bandwidth-efficient
//!   *baseline format* of the near-memory transform engine (§4.1): extracting
//!   a vertical strip from CSC only requires walking down columns from
//!   `colptr`, no per-row scan or jagged-frontier state.
//! * [`Dcsr`] — densified CSR (Hong et al.): only non-empty rows are
//!   represented, via an extra `rowidx` indirection.
//! * [`Dcsc`] — the column-wise mirror, for wide matrices where CSC's
//!   `colptr` dominates (§4.1's DCSC-kernel escape hatch).
//! * [`TiledCsr`] / [`TiledDcsr`] — the matrix cut into vertical strips
//!   (default width 64) and, for DCSR, strips cut into tiles (default height
//!   64). Tiled DCSR is the *compute-efficient* format the engine produces.
//! * [`DenseMatrix`] — row-major dense matrices for the multi-vector operand
//!   `B` and the output `C`.
//!
//! All formats carry explicit storage accounting ([`StorageSize`]) because
//! the paper's Figures 8 and 9 are entirely about metadata footprint, and
//! every conversion is lossless and validated.
//!
//! Indices are `u32` ([`Index`]) and values `f32` ([`Value`]), matching the
//! paper's 4-byte-per-element storage model (§2) and fp32 datatype (§5.1).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod dcsr;
pub mod dense;
pub mod error;
pub mod market;
pub mod ops;
pub mod storage;
pub mod strips;
pub mod tiled;
pub mod views;

pub use coo::{Coo, CooEntry};
pub use csc::Csc;
pub use csr::Csr;
pub use dcsc::Dcsc;
pub use dcsr::Dcsr;
pub use dense::DenseMatrix;
pub use error::FormatError;
pub use storage::{size_ratio, StorageSize};
pub use strips::{strip_count, strip_nonzero_row_fraction, tile_count, StripStats};
pub use tiled::{CsrStrip, DcsrTile, TiledCsr, TiledDcsr, DEFAULT_TILE};
pub use views::CscView;

/// Row/column index type. 4 bytes, matching the paper's storage model where
/// each `rowptr`/`colidx` entry costs 4 bytes (§2).
pub type Index = u32;

/// Matrix element type. The paper evaluates with 32-bit floating point
/// multiplication (§5.1).
pub type Value = f32;

/// Size in bytes of one stored index.
pub const INDEX_BYTES: usize = core::mem::size_of::<Index>();

/// Size in bytes of one stored value.
pub const VALUE_BYTES: usize = core::mem::size_of::<Value>();

/// Shape of a matrix: `(rows, cols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
}

impl Shape {
    /// Create a shape.
    pub const fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols }
    }

    /// Total number of (dense) cells.
    pub fn cells(&self) -> usize {
        self.nrows * self.ncols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }
}

impl core::fmt::Display for Shape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.nrows, self.ncols)
    }
}

/// Common interface over every sparse format in the crate.
pub trait SparseMatrix {
    /// Matrix shape.
    fn shape(&self) -> Shape;

    /// Number of explicitly stored non-zero entries.
    fn nnz(&self) -> usize;

    /// Density `nnz / (nrows * ncols)`; 0 for an empty shape.
    fn density(&self) -> f64 {
        let cells = self.shape().cells();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_display_and_cells() {
        let s = Shape::new(3, 4);
        assert_eq!(s.cells(), 12);
        assert_eq!(s.to_string(), "3x4");
        assert!(!s.is_square());
        assert!(Shape::new(5, 5).is_square());
    }

    #[test]
    fn index_and_value_are_four_bytes() {
        // The paper's §2 byte/FLOP model assumes 4 bytes per rowptr, colidx
        // and value entry; the storage accounting relies on this.
        assert_eq!(INDEX_BYTES, 4);
        assert_eq!(VALUE_BYTES, 4);
    }
}
