//! Error type shared by all format constructors and converters.

use std::fmt;

/// Errors produced when constructing, converting or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// An index array refers past the matrix dimensions.
    IndexOutOfBounds {
        /// Description of the offending axis ("row" / "col").
        axis: &'static str,
        /// The out-of-range index.
        index: u32,
        /// The dimension it must be below.
        bound: usize,
    },
    /// A pointer array (rowptr/colptr) is not monotonically non-decreasing,
    /// does not start at 0, or does not end at nnz.
    MalformedPointerArray {
        /// Which array ("rowptr" / "colptr").
        name: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Parallel arrays disagree in length.
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was found.
        found: usize,
        /// Which array.
        name: &'static str,
    },
    /// Matrix dimensions exceed the `u32` index space.
    DimensionOverflow {
        /// The oversized dimension.
        dim: usize,
    },
    /// Entries within a row (CSR) or column (CSC) are not sorted or contain
    /// duplicates where a canonical format was requested.
    NotCanonical {
        /// Human-readable detail.
        detail: String,
    },
    /// Shapes of two operands are incompatible (e.g. SpMM inner dimensions).
    ShapeMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// A Matrix Market stream could not be parsed.
    Parse {
        /// 1-based line number where parsing failed (0 = header/unknown).
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A value token parsed to NaN or ±infinity. Non-finite values would
    /// silently poison every downstream kernel sum, so they are rejected
    /// at the boundary instead.
    NonFiniteValue {
        /// 1-based line number of the offending entry.
        line: usize,
        /// The literal token as it appeared in the stream.
        token: String,
    },
    /// The same coordinate appeared twice in a Matrix Market stream.
    /// The format's semantics for duplicates are ambiguous (sum? last
    /// wins?), so explicit duplicates are rejected rather than guessed at.
    DuplicateEntry {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// 0-based row index of the duplicated coordinate.
        row: u32,
        /// 0-based column index of the duplicated coordinate.
        col: u32,
    },
    /// Underlying I/O failure while reading/writing a file.
    Io(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds { axis, index, bound } => {
                write!(f, "{axis} index {index} out of bounds (must be < {bound})")
            }
            FormatError::MalformedPointerArray { name, detail } => {
                write!(f, "malformed {name}: {detail}")
            }
            FormatError::LengthMismatch {
                expected,
                found,
                name,
            } => {
                write!(f, "array {name} has length {found}, expected {expected}")
            }
            FormatError::DimensionOverflow { dim } => {
                write!(f, "dimension {dim} exceeds u32 index space")
            }
            FormatError::NotCanonical { detail } => write!(f, "not canonical: {detail}"),
            FormatError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            FormatError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            FormatError::NonFiniteValue { line, token } => {
                write!(f, "non-finite value {token:?} at line {line}")
            }
            FormatError::DuplicateEntry { line, row, col } => {
                write!(
                    f,
                    "duplicate entry for ({row}, {col}) at line {line} (0-based indices)"
                )
            }
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FormatError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            bound: 5,
        };
        assert!(e.to_string().contains("row index 9"));
        let e = FormatError::LengthMismatch {
            expected: 3,
            found: 2,
            name: "values",
        };
        assert!(e.to_string().contains("values"));
        let e = FormatError::Parse {
            line: 7,
            detail: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FormatError = io.into();
        assert!(matches!(e, FormatError::Io(_)));
    }
}
