//! Densified CSC (DCSC) — the column-wise mirror of DCSR.
//!
//! §4.1: for non-square matrices "CSC's col_ptr and CSR's row_ptr can have
//! different storage size, and CSC becomes larger when the sparse matrix
//! is wide. If this is common in a workload, a DCSC kernel can potentially
//! be a host kernel at SMs, performing CSR-to-DCSC conversion using the
//! same engine." DCSC stores only non-empty columns through a `colidx`
//! indirection, exactly as DCSR stores only non-empty rows.

use crate::coo::check_dims;
use crate::{
    Csc, Csr, DenseMatrix, FormatError, Index, Shape, SparseMatrix, StorageSize, Value,
    INDEX_BYTES, VALUE_BYTES,
};

/// Densified CSC sparse matrix: `colidx` lists the non-empty columns,
/// `colptr` spans only those columns, `rowidx`/`values` hold the entries
/// column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsc {
    nrows: usize,
    ncols: usize,
    colidx: Vec<Index>,
    colptr: Vec<Index>,
    rowidx: Vec<Index>,
    values: Vec<Value>,
}

impl Dcsc {
    /// Build from raw arrays, validating all DCSC invariants.
    pub fn new(
        nrows: usize,
        ncols: usize,
        colidx: Vec<Index>,
        colptr: Vec<Index>,
        rowidx: Vec<Index>,
        values: Vec<Value>,
    ) -> Result<Self, FormatError> {
        check_dims(nrows, ncols)?;
        if colptr.len() != colidx.len() + 1 {
            return Err(FormatError::LengthMismatch {
                expected: colidx.len() + 1,
                found: colptr.len(),
                name: "colptr",
            });
        }
        if rowidx.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                expected: rowidx.len(),
                found: values.len(),
                name: "values",
            });
        }
        if colptr.first().copied().unwrap_or(0) != 0
            || colptr.last().copied().unwrap_or(0) as usize != rowidx.len()
        {
            return Err(FormatError::MalformedPointerArray {
                name: "colptr",
                detail: "must span 0..nnz".into(),
            });
        }
        if colptr.windows(2).any(|w| w[0] >= w[1]) && !rowidx.is_empty() {
            return Err(FormatError::MalformedPointerArray {
                name: "colptr",
                detail: "densified columns must be non-empty".into(),
            });
        }
        if colidx.windows(2).any(|w| w[0] >= w[1]) {
            return Err(FormatError::NotCanonical {
                detail: "colidx must be strictly increasing".into(),
            });
        }
        if let Some(&last) = colidx.last() {
            if last as usize >= ncols {
                return Err(FormatError::IndexOutOfBounds {
                    axis: "col",
                    index: last,
                    bound: ncols,
                });
            }
        }
        for i in 0..colidx.len() {
            let (lo, hi) = (colptr[i] as usize, colptr[i + 1] as usize);
            let col_rows = &rowidx[lo..hi];
            for &r in col_rows {
                if r as usize >= nrows {
                    return Err(FormatError::IndexOutOfBounds {
                        axis: "row",
                        index: r,
                        bound: nrows,
                    });
                }
            }
            if col_rows.windows(2).any(|w| w[0] >= w[1]) {
                return Err(FormatError::NotCanonical {
                    detail: format!("densified column {i} has unsorted rows"),
                });
            }
        }
        Ok(Self {
            nrows,
            ncols,
            colidx,
            colptr,
            rowidx,
            values,
        })
    }

    /// Densify a CSC matrix: drop its empty columns into the `colidx`
    /// indirection.
    pub fn from_csc(csc: &Csc) -> Self {
        let shape = csc.shape();
        let mut colidx = Vec::new();
        let mut colptr = vec![0 as Index];
        let mut rowidx = Vec::with_capacity(csc.nnz());
        let mut values = Vec::with_capacity(csc.nnz());
        for c in 0..shape.ncols {
            let (rows, vals) = csc.col(c);
            if rows.is_empty() {
                continue;
            }
            colidx.push(c as Index);
            rowidx.extend_from_slice(rows);
            values.extend_from_slice(vals);
            colptr.push(rowidx.len() as Index);
        }
        Self {
            nrows: shape.nrows,
            ncols: shape.ncols,
            colidx,
            colptr,
            rowidx,
            values,
        }
    }

    /// Densify straight from CSR (via the counting transpose).
    pub fn from_csr(csr: &Csr) -> Self {
        Self::from_csc(&csr.to_csc())
    }

    /// Expand back to CSC (reinstating empty columns).
    pub fn to_csc(&self) -> Csc {
        let mut colptr = vec![0 as Index; self.ncols + 1];
        for (i, &c) in self.colidx.iter().enumerate() {
            colptr[c as usize + 1] = self.colptr[i + 1] - self.colptr[i];
        }
        for i in 0..self.ncols {
            colptr[i + 1] += colptr[i];
        }
        Csc::from_parts_unchecked(
            self.nrows,
            self.ncols,
            colptr,
            self.rowidx.clone(),
            self.values.clone(),
        )
    }

    /// Non-empty column indices (`n_nnzcol` entries).
    pub fn colidx(&self) -> &[Index] {
        &self.colidx
    }

    /// Column pointers over the densified columns.
    pub fn colptr(&self) -> &[Index] {
        &self.colptr
    }

    /// Row index array (column-major).
    pub fn rowidx(&self) -> &[Index] {
        &self.rowidx
    }

    /// Value array (column-major).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of non-empty columns stored (`n_nnzcol`).
    pub fn num_dense_cols(&self) -> usize {
        self.colidx.len()
    }

    /// The `i`-th densified column: `(global column, rows, values)`.
    #[inline]
    pub fn dense_col(&self, i: usize) -> (Index, &[Index], &[Value]) {
        let (lo, hi) = (self.colptr[i] as usize, self.colptr[i + 1] as usize);
        (self.colidx[i], &self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Iterate `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, Value)> + '_ {
        (0..self.colidx.len()).flat_map(move |i| {
            let (c, rows, vals) = self.dense_col(i);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Densify into a dense matrix (tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }
}

impl SparseMatrix for Dcsc {
    fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    fn nnz(&self) -> usize {
        self.rowidx.len()
    }
}

impl StorageSize for Dcsc {
    fn metadata_bytes(&self) -> usize {
        (self.rowidx.len() + self.colptr.len() + self.colidx.len()) * INDEX_BYTES
    }

    fn data_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// A wide matrix (2 x 100) with only 3 non-empty columns — the §4.1
    /// scenario where CSC's colptr dominates and DCSC pays off.
    fn wide() -> Csc {
        let coo = Coo::from_triplets(2, 100, &[0, 1, 1], &[5, 5, 90], &[1.0, 2.0, 3.0]).unwrap();
        Csc::from_coo(&coo)
    }

    #[test]
    fn densify_keeps_only_nonzero_cols() {
        let d = Dcsc::from_csc(&wide());
        assert_eq!(d.colidx(), &[5, 90]);
        assert_eq!(d.num_dense_cols(), 2);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.colptr(), &[0, 2, 3]);
    }

    #[test]
    fn csc_roundtrip() {
        let csc = wide();
        assert_eq!(Dcsc::from_csc(&csc).to_csc(), csc);
    }

    #[test]
    fn from_csr_matches_from_csc() {
        let csc = wide();
        let csr = csc.to_csr();
        assert_eq!(Dcsc::from_csr(&csr), Dcsc::from_csc(&csc));
    }

    #[test]
    fn wide_matrix_storage_win() {
        // CSC pays 101 colptr entries; DCSC pays 3 colptr + 2 colidx.
        let csc = wide();
        let dcsc = Dcsc::from_csc(&csc);
        assert!(dcsc.metadata_bytes() < csc.metadata_bytes());
        assert_eq!(csc.metadata_bytes(), (3 + 101) * 4);
        assert_eq!(dcsc.metadata_bytes(), (3 + 3 + 2) * 4);
    }

    #[test]
    fn dense_col_access_and_iter() {
        let d = Dcsc::from_csc(&wide());
        let (c, rows, vals) = d.dense_col(0);
        assert_eq!(c, 5);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[1.0, 2.0]);
        assert_eq!(d.to_dense(), wide().to_dense());
    }

    #[test]
    fn validation_rejects_bad_structures() {
        // Empty densified column.
        assert!(Dcsc::new(2, 4, vec![0, 1], vec![0, 0, 1], vec![0], vec![1.0]).is_err());
        // Unsorted colidx.
        assert!(Dcsc::new(2, 4, vec![2, 0], vec![0, 1, 2], vec![0, 0], vec![1.0, 2.0]).is_err());
        // Out-of-bounds column / row.
        assert!(Dcsc::new(2, 4, vec![9], vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Dcsc::new(2, 4, vec![0], vec![0, 1], vec![7], vec![1.0]).is_err());
        // colptr length mismatch.
        assert!(Dcsc::new(2, 4, vec![0], vec![0], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn empty_matrix() {
        let d = Dcsc::new(3, 3, vec![], vec![0], vec![], vec![]).unwrap();
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_csc().nnz(), 0);
    }

    #[test]
    fn dcsc_of_transpose_mirrors_dcsr() {
        // DCSC(A) lists the same indices as DCSR(Aᵀ)'s rows.
        let coo = Coo::from_triplets(6, 6, &[0, 3, 3, 5], &[1, 1, 4, 2], &[1.0; 4]).unwrap();
        let csr = crate::Csr::from_coo(&coo);
        let dcsc = Dcsc::from_csr(&csr);
        let dcsr_t = crate::Dcsr::from_csr(&csr.transpose());
        assert_eq!(dcsc.colidx(), dcsr_t.rowidx());
        assert_eq!(dcsc.nnz(), dcsr_t.nnz());
    }
}
