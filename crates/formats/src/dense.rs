//! Row-major dense matrices for the multi-vector operand `B` and output `C`.

use crate::{FormatError, Shape, Value};

/// A row-major dense matrix of `f32`.
///
/// SpMM multiplies a sparse `A[M][N]` by a dense `B[N][K]` into a dense
/// `C[M][K]` (Algorithm 1 of the paper). `K` is the number of vectors; the
/// paper's kernels map warps across these `K` columns (row-per-warp).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<Value>,
}

impl DenseMatrix {
    /// An `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Build from a row-major buffer. Fails if `data.len() != nrows*ncols`.
    pub fn from_row_major(
        nrows: usize,
        ncols: usize,
        data: Vec<Value>,
    ) -> Result<Self, FormatError> {
        if data.len() != nrows * ncols {
            return Err(FormatError::LengthMismatch {
                expected: nrows * ncols,
                found: data.len(),
                name: "dense data",
            });
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Build by evaluating `f(row, col)` for every cell.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> Value) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                data.push(f(r, c));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Matrix shape.
    pub fn shape(&self) -> Shape {
        Shape::new(self.nrows, self.ncols)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Read a cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Value {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.data[row * self.ncols + col]
    }

    /// Write a cell.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: Value) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.data[row * self.ncols + col] = v;
    }

    /// Accumulate into a cell.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: Value) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.data[row * self.ncols + col] += v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[Value] {
        let start = row * self.ncols;
        &self.data[start..start + self.ncols]
    }

    /// Borrow one row mutably.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [Value] {
        let start = row * self.ncols;
        &mut self.data[start..start + self.ncols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[Value] {
        &self.data
    }

    /// The raw row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [Value] {
        &mut self.data
    }

    /// Split the matrix row range into disjoint mutable row-major chunks of
    /// `rows_per_chunk` rows — the building block for parallel C-stationary
    /// updates where each worker owns a horizontal strip of `C`.
    pub fn par_row_chunks_mut(&mut self, rows_per_chunk: usize) -> Vec<(usize, &mut [Value])> {
        assert!(rows_per_chunk > 0, "rows_per_chunk must be positive");
        let ncols = self.ncols;
        self.data
            .chunks_mut(rows_per_chunk * ncols)
            .enumerate()
            .map(|(i, chunk)| (i * rows_per_chunk, chunk))
            .collect()
    }

    /// Fill every cell with `v`.
    pub fn fill(&mut self, v: Value) {
        self.data.fill(v);
    }

    /// Storage footprint in bytes (the `8N²`-style terms of the paper's §2
    /// byte/FLOP model count dense traffic at 4 bytes per cell per matrix).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * crate::VALUE_BYTES
    }

    /// Maximum absolute difference against another matrix of equal shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when all cells are within `tol` of `other` (relative to the
    /// larger magnitude, with an absolute floor). Suitable for comparing
    /// SpMM results whose accumulation order differs.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.shape(), Shape::new(2, 3));
        m.set(1, 2, 5.0);
        m.add(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
        assert_eq!(m.row(1), &[0.0, 0.0, 6.5]);
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = DenseMatrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn row_chunks_cover_matrix() {
        let mut m = DenseMatrix::from_fn(5, 2, |r, _| r as f32);
        let chunks = m.par_row_chunks_mut(2);
        assert_eq!(chunks.len(), 3); // 2 + 2 + 1 rows
        let starts: Vec<usize> = chunks.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 2, 4]);
        let total: usize = chunks.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let mut b = a.clone();
        b.add(0, 1, 1e-7);
        assert!(a.approx_eq(&b, 1e-5));
        b.add(0, 1, 1.0);
        assert!(!a.approx_eq(&b, 1e-5));
        assert!(a.max_abs_diff(&b) > 0.9);
    }

    #[test]
    fn storage_bytes_counts_values() {
        let m = DenseMatrix::zeros(10, 10);
        assert_eq!(m.storage_bytes(), 400);
    }
}
