//! Slice-based buffer pools for hot-path allocation reuse.
//!
//! The conversion farm and the online B-stationary kernel are streaming
//! loops: every strip wants the same handful of scratch buffers (row
//! pointers, tile element staging, dense accumulators), and allocating
//! them fresh per strip puts the allocator on the critical path. This
//! crate provides the reuse discipline: a [`SlicePool`] shelves retired
//! `Vec<T>` buffers keyed by capacity and hands them back on request —
//! exact-capacity fast path, best-fit-at-least fallback, fresh
//! allocation only on a true miss (the "exclusive pool" design: one
//! buffer per checkout, never sliced or shared).
//!
//! Pools are *correctness-neutral by construction*: `take` always
//! returns an empty (`len == 0`) vector, so pooled and unpooled runs
//! execute identical element-level logic and produce bitwise-identical
//! results. Pool hit/miss statistics are schedule-dependent (workers
//! race for shelved buffers) and must therefore never feed serialized
//! artifacts — they are observability-only, like wall-clock timings.
//!
//! [`SharedSlicePool`] wraps a pool in a `Mutex` for use as a `static`
//! shared across worker threads; both types are const-constructible.

use std::collections::BTreeMap;

// Under `--cfg loom` the shared pool's lock comes from the loom shim so
// the model checker can explore take/put/poison interleavings; the shim
// mirrors std's API (const `new`, `LockResult`, poisoning), so nothing
// else changes.
#[cfg(loom)]
use loom::sync::{Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Mutex, MutexGuard};

/// Default cap on idle buffers retained per pool. Beyond this, `put`
/// drops the buffer instead of shelving it, bounding idle memory for
/// workloads that churn through many distinct sizes.
pub const DEFAULT_MAX_IDLE: usize = 64;

/// Counters describing a pool's reuse behaviour. Observability only:
/// hit/miss totals depend on thread scheduling and must never be
/// serialized into deterministic artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls satisfied from the shelf without reallocation
    /// (shelved capacity ≥ requested).
    pub hits: u64,
    /// `take` calls that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers returned via `put` and shelved for reuse.
    pub reclaimed: u64,
    /// Buffers dropped by `put` because the idle cap was reached (or
    /// the buffer had zero capacity).
    pub evicted: u64,
}

impl PoolStats {
    /// Fold another stats snapshot into this one.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.reclaimed += other.reclaimed;
        self.evicted += other.evicted;
    }
}

/// A pool of reusable `Vec<T>` buffers, shelved by capacity.
///
/// Not thread-safe on its own; wrap in [`SharedSlicePool`] (or keep one
/// per worker) for concurrent use.
#[derive(Debug)]
pub struct SlicePool<T> {
    /// Idle buffers keyed by capacity. `BTreeMap` (not `HashMap`) so the
    /// best-fit scan is ordered and the pool never introduces iteration
    /// nondeterminism anywhere.
    shelves: BTreeMap<usize, Vec<Vec<T>>>,
    /// Total idle buffers across all shelves.
    idle: usize,
    /// Cap on `idle`; `put` evicts beyond it.
    max_idle: usize,
    stats: PoolStats,
}

impl<T> Default for SlicePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlicePool<T> {
    /// An empty pool with [`DEFAULT_MAX_IDLE`] retention.
    /// Const-constructible so pools can live in `static`s.
    pub const fn new() -> Self {
        Self::with_max_idle(DEFAULT_MAX_IDLE)
    }

    /// An empty pool retaining at most `max_idle` idle buffers.
    pub const fn with_max_idle(max_idle: usize) -> Self {
        SlicePool {
            shelves: BTreeMap::new(),
            idle: 0,
            max_idle,
            stats: PoolStats {
                hits: 0,
                misses: 0,
                reclaimed: 0,
                evicted: 0,
            },
        }
    }

    /// Check out an empty vector with `capacity() >= min_capacity`.
    ///
    /// Exact-capacity shelf first, then the smallest shelved capacity
    /// that still fits (best-fit-at-least), then a fresh allocation.
    /// The returned vector always has `len() == 0`.
    pub fn take(&mut self, min_capacity: usize) -> Vec<T> {
        // Best-fit-at-least: the first occupied shelf at or above the
        // request; `range` makes the exact match the first candidate.
        let key = self
            .shelves
            .range(min_capacity..)
            .find(|(_, bufs)| !bufs.is_empty())
            .map(|(&cap, _)| cap);
        if let Some(cap) = key {
            if let Some(bufs) = self.shelves.get_mut(&cap) {
                if let Some(buf) = bufs.pop() {
                    self.idle -= 1;
                    self.stats.hits += 1;
                    return buf;
                }
            }
        }
        self.stats.misses += 1;
        Vec::with_capacity(min_capacity)
    }

    /// Return a buffer to the pool. Contents are cleared; `T` drop glue
    /// runs here, not on the hot path that checked the buffer out only
    /// for `Copy` payloads (all current users pool `u32`/`f32`/tiles).
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0 || self.idle >= self.max_idle {
            self.stats.evicted += 1;
            return;
        }
        self.idle += 1;
        self.stats.reclaimed += 1;
        self.shelves.entry(buf.capacity()).or_default().push(buf);
    }

    /// Buffers currently shelved.
    pub fn idle_len(&self) -> usize {
        self.idle
    }

    /// Total element capacity shelved across all buffers — the pool's
    /// idle footprint in elements (multiply by `size_of::<T>()` for
    /// bytes). Byte-budgeted consumers (the serve plan cache) publish
    /// this as a gauge to attribute resident-but-idle memory.
    pub fn idle_capacity(&self) -> usize {
        self.shelves
            .iter()
            .map(|(cap, bufs)| cap * bufs.len())
            .sum()
    }

    /// Snapshot of the reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drop every shelved buffer and zero the counters. Used before
    /// instrumented measurement passes so alloc counts are reproducible
    /// regardless of what earlier (parallel, schedule-dependent) work
    /// left on the shelves.
    pub fn reset(&mut self) {
        self.shelves.clear();
        self.idle = 0;
        self.stats = PoolStats::default();
    }
}

/// A `Mutex`-wrapped [`SlicePool`] suitable for `static` use across the
/// worker threads of a conversion farm. Lock poisoning is unreachable in
/// practice (no pool method panics) and is recovered by taking the inner
/// value: a pool's state is valid at every step, so a poisoned lock only
/// means some *other* buffer never came back — safe to continue.
#[derive(Debug)]
pub struct SharedSlicePool<T> {
    inner: Mutex<SlicePool<T>>,
}

impl<T> Default for SharedSlicePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedSlicePool<T> {
    /// An empty shared pool with default retention.
    pub const fn new() -> Self {
        SharedSlicePool {
            inner: Mutex::new(SlicePool::new()),
        }
    }

    /// An empty shared pool retaining at most `max_idle` idle buffers.
    pub const fn with_max_idle(max_idle: usize) -> Self {
        SharedSlicePool {
            inner: Mutex::new(SlicePool::with_max_idle(max_idle)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlicePool<T>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Model-only: poison the inner lock by panicking while holding it.
    /// No pool method panics, so poisoning is unreachable through the
    /// public API — the loom model uses this to prove the documented
    /// "recover by taking the inner value" claim actually holds.
    #[cfg(loom)]
    pub fn poison_for_model(&self) {
        let _guard = self.inner.lock();
        // nmt-lint: allow(panic) — panicking while holding the lock IS
        //   this hook's purpose: it forces poisoning so the model can
        //   prove recovery.
        panic!("loom model: poisoning the pool lock");
    }

    /// See [`SlicePool::take`].
    pub fn take(&self, min_capacity: usize) -> Vec<T> {
        self.lock().take(min_capacity)
    }

    /// See [`SlicePool::put`].
    pub fn put(&self, buf: Vec<T>) {
        self.lock().put(buf);
    }

    /// See [`SlicePool::stats`].
    pub fn stats(&self) -> PoolStats {
        self.lock().stats()
    }

    /// See [`SlicePool::idle_len`].
    pub fn idle_len(&self) -> usize {
        self.lock().idle_len()
    }

    /// See [`SlicePool::idle_capacity`].
    pub fn idle_capacity(&self) -> usize {
        self.lock().idle_capacity()
    }

    /// See [`SlicePool::reset`].
    pub fn reset(&self) {
        self.lock().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_allocates_with_capacity() {
        let mut pool: SlicePool<u32> = SlicePool::new();
        let v = pool.take(17);
        assert!(v.is_empty());
        assert!(v.capacity() >= 17);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn put_then_take_reuses_exact_capacity() {
        let mut pool: SlicePool<u32> = SlicePool::new();
        let mut v = pool.take(8);
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle_len(), 1);
        let v2 = pool.take(cap);
        assert!(v2.is_empty(), "reused buffers come back cleared");
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.idle_len(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_shelf() {
        let mut pool: SlicePool<u8> = SlicePool::new();
        for cap in [4usize, 16, 64] {
            pool.put(Vec::with_capacity(cap));
        }
        let v = pool.take(10);
        assert_eq!(v.capacity(), 16, "16 is the smallest shelf >= 10");
        let v2 = pool.take(100);
        assert!(v2.capacity() >= 100, "no shelf fits; fresh allocation");
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn idle_cap_evicts() {
        let mut pool: SlicePool<u8> = SlicePool::with_max_idle(2);
        for _ in 0..4 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle_len(), 2);
        assert_eq!(pool.stats().reclaimed, 2);
        assert_eq!(pool.stats().evicted, 2);
    }

    #[test]
    fn idle_capacity_tracks_shelved_footprint() {
        let mut pool: SlicePool<u8> = SlicePool::new();
        assert_eq!(pool.idle_capacity(), 0);
        pool.put(Vec::with_capacity(4));
        pool.put(Vec::with_capacity(16));
        assert_eq!(pool.idle_capacity(), 20);
        let _taken = pool.take(10); // pulls the 16-capacity shelf
        assert_eq!(pool.idle_capacity(), 4);
        pool.reset();
        assert_eq!(pool.idle_capacity(), 0);
    }

    #[test]
    fn zero_capacity_buffers_are_not_shelved() {
        let mut pool: SlicePool<u8> = SlicePool::new();
        pool.put(Vec::new());
        assert_eq!(pool.idle_len(), 0);
        assert_eq!(pool.stats().evicted, 1);
    }

    #[test]
    fn take_zero_is_a_hit_on_any_shelf() {
        let mut pool: SlicePool<u8> = SlicePool::new();
        pool.put(Vec::with_capacity(4));
        let v = pool.take(0);
        assert_eq!(v.capacity(), 4);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn reset_drops_shelves_and_counters() {
        let mut pool: SlicePool<u8> = SlicePool::new();
        pool.put(Vec::with_capacity(8));
        let _ = pool.take(8);
        pool.reset();
        assert_eq!(pool.idle_len(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn shared_pool_round_trip() {
        static POOL: SharedSlicePool<f32> = SharedSlicePool::new();
        POOL.reset();
        let mut v = POOL.take(32);
        v.push(1.0);
        let cap = v.capacity();
        POOL.put(v);
        let v2 = POOL.take(cap);
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(POOL.stats().hits, 1);
        POOL.reset();
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = PoolStats {
            hits: 1,
            misses: 2,
            reclaimed: 3,
            evicted: 4,
        };
        a.merge(&PoolStats {
            hits: 10,
            misses: 20,
            reclaimed: 30,
            evicted: 40,
        });
        assert_eq!(a, PoolStats {
            hits: 11,
            misses: 22,
            reclaimed: 33,
            evicted: 44,
        });
    }
}
