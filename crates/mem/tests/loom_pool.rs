//! Loom models for [`SharedSlicePool`]: run with
//! `RUSTFLAGS="--cfg loom" cargo test -p nmt-mem --test loom_pool`.
//!
//! The pool's documented contracts under concurrency:
//! * `take` always yields an empty vector of sufficient capacity, and
//!   the hit/miss/reclaim counters stay exact, on every interleaving.
//! * A panic while holding the pool lock (unreachable through the
//!   public API, forced here via a model-only hook) poisons the lock,
//!   and every later operation recovers by taking the inner value.
#![cfg(loom)]

use loom::thread;
use nmt_mem::SharedSlicePool;
use std::sync::Arc;

#[test]
fn concurrent_take_put_keeps_counters_exact() {
    loom::model(|| {
        let pool: Arc<SharedSlicePool<u32>> = Arc::new(SharedSlicePool::new());
        pool.put(Vec::with_capacity(8));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let p = pool.clone();
                thread::spawn(move || {
                    let buf = p.take(8);
                    assert!(buf.is_empty(), "pooled buffers must come back cleared");
                    assert!(buf.capacity() >= 8);
                    p.put(buf);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let s = pool.stats();
        // Whether the second taker hits depends on the schedule (it may
        // run before or after the first put), but the books must balance:
        // one take per thread, one reclaim per put, nothing evicted.
        assert_eq!(s.hits + s.misses, 2);
        assert!(s.hits >= 1, "the pre-shelved buffer must satisfy someone");
        assert_eq!(s.reclaimed, 3);
        assert_eq!(s.evicted, 0);
        assert_eq!(pool.idle_len(), 3 - s.hits as usize);
    });
}

#[test]
fn poisoned_lock_recovers_on_every_interleaving() {
    loom::model(|| {
        let pool: Arc<SharedSlicePool<u8>> = Arc::new(SharedSlicePool::new());
        let p = pool.clone();
        let poisoner = thread::spawn(move || p.poison_for_model());
        assert!(poisoner.join().is_err(), "the poisoner must report its panic");
        // Every pool entry point goes through the same recovery; none
        // may deadlock or propagate the poison.
        let buf = pool.take(4);
        assert!(buf.capacity() >= 4);
        pool.put(buf);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().reclaimed, 1);
        assert_eq!(pool.idle_len(), 1);
    });
}

#[test]
fn taker_racing_the_poisoner_still_completes() {
    loom::model(|| {
        let pool: Arc<SharedSlicePool<u8>> = Arc::new(SharedSlicePool::new());
        let p1 = pool.clone();
        let poisoner = thread::spawn(move || p1.poison_for_model());
        let p2 = pool.clone();
        let taker = thread::spawn(move || {
            // May run before, during, or after the poisoning — all must
            // yield a usable buffer.
            let buf = p2.take(2);
            assert!(buf.capacity() >= 2);
        });
        assert!(poisoner.join().is_err());
        taker.join().unwrap();
        assert_eq!(pool.stats().misses, 1);
    });
}
