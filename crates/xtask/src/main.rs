//! Workspace automation driver: `cargo xtask <command>`.
//!
//! ```text
//! cargo xtask lint [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]
//! cargo xtask lint --rules-md [--write]
//! cargo xtask analyze [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]
//! cargo xtask miri [--root <dir>]
//! ```
//!
//! `lint` runs the token/context pass; with no `PATH` arguments the
//! whole workspace's library sources are checked, explicit paths (files
//! or directories, e.g. the fixtures under `tests/lint_fixtures/`) are
//! checked instead when given. `--rules-md` prints the generated rule
//! catalogue (DESIGN.md §6d); `--write` splices it into DESIGN.md
//! between the `nmt-lint:rules-table` markers.
//!
//! `analyze` runs the determinism dataflow pass (source→sink taint over
//! the intra-crate call graph) plus the `atomic-ordering` rule, and can
//! emit the call-graph/taint statistics as a JSON artifact.
//!
//! `miri` drives `cargo miri test` over the unsafe-bearing crates when
//! the Miri component is installed, and skips cleanly (exit 0, loud
//! message) when it is not — the offline toolchain may lack it.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  lint     [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]
           [--rules-md [--write]]
  analyze  [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]
  miri     [--root <dir>]

common options:
  --json <path>     also write the machine-readable report to <path>
  --deny-warnings   treat warning-severity findings as failures
  --root <dir>      workspace root (default: ancestor of this binary's manifest)
  PATH...           check these files/dirs instead of the workspace sources

lint options:
  --rules-md        print the generated DESIGN.md rule-catalogue table
  --write           with --rules-md: splice the table into DESIGN.md in place
";

struct CommonArgs {
    json_out: Option<PathBuf>,
    deny_warnings: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
    rules_md: bool,
    write: bool,
}

fn default_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut out = CommonArgs {
        json_out: None,
        deny_warnings: false,
        root: default_root(),
        paths: Vec::new(),
        rules_md: false,
        write: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                out.json_out = Some(PathBuf::from(v));
            }
            "--deny-warnings" => out.deny_warnings = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                out.root = PathBuf::from(v);
            }
            "--rules-md" => out.rules_md = true,
            "--write" => out.write = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => out.paths.push(PathBuf::from(other)),
        }
    }
    Ok(out)
}

fn write_json(path: &PathBuf, body: &str) -> Result<(), ExitCode> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: writing {}: {e}", path.display());
        return Err(ExitCode::from(2));
    }
    eprintln!("report written to {}", path.display());
    Ok(())
}

/// Markers bounding the generated rule table in DESIGN.md.
const RULES_TABLE_START: &str = "<!-- nmt-lint:rules-table:start (generated; run `cargo xtask lint --rules-md --write`) -->";
const RULES_TABLE_END: &str = "<!-- nmt-lint:rules-table:end -->";

fn run_rules_md(parsed: &CommonArgs) -> ExitCode {
    let table = nmt_lint::rules_markdown();
    if !parsed.write {
        print!("{table}");
        return ExitCode::SUCCESS;
    }
    let design = parsed.root.join("DESIGN.md");
    let text = match std::fs::read_to_string(&design) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", design.display());
            return ExitCode::from(2);
        }
    };
    let (Some(start), Some(end)) = (text.find(RULES_TABLE_START), text.find(RULES_TABLE_END))
    else {
        eprintln!(
            "error: {} is missing the nmt-lint:rules-table markers",
            design.display()
        );
        return ExitCode::from(2);
    };
    if end < start {
        eprintln!("error: rules-table markers are out of order");
        return ExitCode::from(2);
    }
    let mut updated = String::new();
    updated.push_str(&text[..start + RULES_TABLE_START.len()]);
    updated.push('\n');
    updated.push_str(&table);
    updated.push_str(&text[end..]);
    if let Err(e) = std::fs::write(&design, updated) {
        eprintln!("error: writing {}: {e}", design.display());
        return ExitCode::from(2);
    }
    eprintln!("rule table updated in {}", design.display());
    ExitCode::SUCCESS
}

fn run_lint(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if parsed.rules_md {
        return run_rules_md(&parsed);
    }
    let result = if parsed.paths.is_empty() {
        nmt_lint::lint_workspace(&parsed.root)
    } else {
        nmt_lint::lint_paths(&parsed.root, &parsed.paths)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(json_path) = &parsed.json_out {
        if let Err(code) = write_json(json_path, &report.to_json()) {
            return code;
        }
    }
    if report.failed(parsed.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if parsed.paths.is_empty() {
        nmt_lint::analyze_workspace(&parsed.root)
    } else {
        nmt_lint::analyze_paths(&parsed.root, &parsed.paths)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(json_path) = &parsed.json_out {
        if let Err(code) = write_json(json_path, &report.to_json()) {
            return code;
        }
    }
    if report.failed(parsed.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Crates with `unsafe` code that Miri should interpret. Kept explicit
/// so a Miri run does not drag the whole workspace (and its build
/// scripts) through the interpreter.
const MIRI_CRATES: &[&str] = &["nmt-obs", "nmt-mem", "nmt-bench"];

fn run_miri(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Miri is a nightly component; the offline toolchain may not carry
    // it. Detect, and skip loudly rather than fail the gate: the CI job
    // that *does* have Miri still runs the real thing.
    let probe = std::process::Command::new("cargo")
        .args(["miri", "--version"])
        .output();
    let available = matches!(&probe, Ok(o) if o.status.success());
    if !available {
        eprintln!(
            "xtask miri: `cargo miri` is not available on this toolchain; skipping \
             (install with `rustup +nightly component add miri` to run locally)"
        );
        return ExitCode::SUCCESS;
    }
    let mut cmd = std::process::Command::new("cargo");
    cmd.arg("miri").arg("test");
    for c in MIRI_CRATES {
        cmd.args(["-p", c]);
    }
    cmd.current_dir(&parsed.root);
    // Span timing and the progress reporter's isatty probe need host
    // clock/fd access under the interpreter.
    cmd.env(
        "MIRIFLAGS",
        std::env::var("MIRIFLAGS").unwrap_or_else(|_| "-Zmiri-disable-isolation".to_string()),
    );
    match cmd.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: running cargo miri: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("miri") => run_miri(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
