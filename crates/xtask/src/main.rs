//! Workspace automation driver: `cargo xtask <command>`.
//!
//! Currently one command:
//!
//! ```text
//! cargo xtask lint [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]
//! ```
//!
//! With no `PATH` arguments the whole workspace's library sources are
//! linted; explicit paths (files or directories, e.g. the fixtures under
//! `tests/lint_fixtures/`) are linted instead when given. Exit codes:
//! `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask lint [--json <path>] [--deny-warnings] [--root <dir>] [PATH...]

  --json <path>     also write the machine-readable report to <path>
  --deny-warnings   treat warning-severity findings as failures
  --root <dir>      workspace root (default: ancestor of this binary's manifest)
  PATH...           lint these files/dirs instead of the workspace sources
";

struct LintArgs {
    json_out: Option<PathBuf>,
    deny_warnings: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
}

fn default_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs {
        json_out: None,
        deny_warnings: false,
        root: default_root(),
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                out.json_out = Some(PathBuf::from(v));
            }
            "--deny-warnings" => out.deny_warnings = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                out.root = PathBuf::from(v);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => out.paths.push(PathBuf::from(other)),
        }
    }
    Ok(out)
}

fn run_lint(args: &[String]) -> ExitCode {
    let parsed = match parse_lint_args(args) {
        Ok(p) => p,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if parsed.paths.is_empty() {
        nmt_lint::lint_workspace(&parsed.root)
    } else {
        nmt_lint::lint_paths(&parsed.root, &parsed.paths)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(json_path) = &parsed.json_out {
        if let Some(dir) = json_path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: creating {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("error: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
        eprintln!("report written to {}", json_path.display());
    }
    if report.failed(parsed.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
