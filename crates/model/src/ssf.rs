//! The Sparsity Skewness Function (Eq. 2) and threshold learning (Fig. 4).
//!
//! ```text
//! SSF = (n_nnzrow / n) / mean(n_nnzrow_strip / n) · A.nnz · (1 - H_norm)
//! ```
//!
//! Larger SSF ⇒ B-stationary (online tiled DCSR) is predicted to win;
//! smaller ⇒ C-stationary (untiled CSR/DCSR). The threshold `SSF_th` is
//! learned by profiling a suite with both algorithms and picking the split
//! that maximizes classification accuracy — the paper reports >93 % on
//! ~4,000 SuiteSparse matrices, rising to ~96 % once online tiling removes
//! the DCSR metadata penalty the heuristic cannot see.

use crate::entropy::normalized_entropy;
use nmt_formats::{Csr, SparseMatrix, StripStats};
use serde::{Deserialize, Serialize};

/// The SSF value of a matrix together with the terms it was built from
/// (useful for reports and debugging misclassifications).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsfProfile {
    /// Fraction of rows with ≥ 1 non-zero (`n_nnzrow / n`).
    pub nnzrow_frac: f64,
    /// Mean fraction of non-zero rows per strip.
    pub mean_strip_frac: f64,
    /// Non-zero count.
    pub nnz: f64,
    /// Normalized entropy `H_norm` (Eq. 1).
    pub h_norm: f64,
    /// The SSF value (Eq. 2).
    pub ssf: f64,
}

impl SsfProfile {
    /// Profile a matrix under `tile_w`-wide strips.
    pub fn compute(csr: &Csr, tile_w: usize) -> Self {
        let shape = csr.shape();
        let n = shape.nrows.max(1) as f64;
        let nnzrow_frac = csr.nonzero_rows() as f64 / n;
        let stats = StripStats::compute(csr, tile_w);
        let mean_strip_frac = stats.mean_fraction;
        let nnz = csr.nnz() as f64;
        let h_norm = normalized_entropy(csr, tile_w);
        let ssf = if mean_strip_frac > 0.0 {
            nnzrow_frac / mean_strip_frac * nnz * (1.0 - h_norm)
        } else {
            0.0
        };
        Self {
            nnzrow_frac,
            mean_strip_frac,
            nnz,
            h_norm,
            ssf,
        }
    }
}

impl SsfProfile {
    /// Estimate the profile from a uniform sample of `sample_rows` rows —
    /// the paper's proposed profiling-cost reduction ("we believe these
    /// parameters can be obtained through sampling to minimize profiling
    /// time, but we leave it for future work", §3.1.4).
    ///
    /// Every SSF term is a per-row statistic, so a row sample estimates
    /// each unbiasedly: `n_nnzrow/n` from the sampled non-empty fraction,
    /// `nnz` from the sampled mean row population, the per-strip occupancy
    /// from sampled rows' strip hits, and `H_norm` from the sampled
    /// row-segment distribution. Cost is O(sample nnz) instead of O(nnz).
    pub fn compute_sampled(csr: &Csr, tile_w: usize, sample_rows: usize, seed: u64) -> Self {
        assert!(tile_w > 0, "tile width must be positive");
        let shape = csr.shape();
        let n = shape.nrows;
        if n == 0 || sample_rows == 0 {
            return Self {
                nnzrow_frac: 0.0,
                mean_strip_frac: 0.0,
                nnz: 0.0,
                h_norm: 0.0,
                ssf: 0.0,
            };
        }
        if sample_rows >= n {
            return Self::compute(csr, tile_w);
        }
        // Deterministic splitmix64 row sampler (without replacement via
        // index-stride shuffle: a fixed odd stride over Z_n visits n
        // distinct rows).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let start = (next() % n as u64) as usize;
        // A stride coprime to n makes the walk visit `sample_rows` distinct
        // rows; retry a few draws, falling back to 1 (contiguous window).
        let mut stride = 1usize;
        for _ in 0..8 {
            let candidate = ((next() % n as u64) as usize) | 1;
            if gcd(candidate % n.max(1), n) == 1 {
                stride = candidate % n.max(1);
                break;
            }
        }

        let nstrips = nmt_formats::strip_count(shape.ncols, tile_w);
        let mut sampled_nonempty = 0usize;
        let mut sampled_nnz = 0usize;
        let mut strip_hits = vec![0usize; nstrips];
        let mut segments: Vec<usize> = Vec::new();
        let mut row = start;
        for _ in 0..sample_rows {
            let (cols, _) = csr.row(row);
            if !cols.is_empty() {
                sampled_nonempty += 1;
                sampled_nnz += cols.len();
                let mut i = 0;
                while i < cols.len() {
                    let strip = cols[i] as usize / tile_w;
                    let end = ((strip + 1) * tile_w) as u32;
                    let mut len = 0;
                    while i < cols.len() && cols[i] < end {
                        len += 1;
                        i += 1;
                    }
                    strip_hits[strip] += 1;
                    segments.push(len);
                }
            }
            row = (row + stride.max(1)) % n;
        }
        let scale = n as f64 / sample_rows as f64;
        let nnzrow_frac = sampled_nonempty as f64 / sample_rows as f64;
        let nnz_est = sampled_nnz as f64 * scale;
        let mean_strip_frac = strip_hits
            .iter()
            .map(|&h| h as f64 / sample_rows as f64)
            .sum::<f64>()
            / nstrips as f64;
        // Sampled entropy: Shannon entropy of the sampled segment shares
        // normalized by Hartley entropy of the *estimated* total nnz.
        let h_norm = if nnz_est > 1.0 && !segments.is_empty() {
            let total: usize = segments.iter().sum();
            let totalf = total as f64;
            let h: f64 = segments
                .iter()
                .filter(|&&s| s > 0)
                .map(|&s| {
                    let p = s as f64 / totalf;
                    -p * p.ln()
                })
                .sum();
            // The sample sees segments.len() of an estimated
            // segments.len()·scale segments; extending the distribution
            // with scale-1 more copies of the same shape adds ln(scale).
            ((h + (scale.max(1.0)).ln()) / nnz_est.ln()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let ssf = if mean_strip_frac > 0.0 {
            nnzrow_frac / mean_strip_frac * nnz_est * (1.0 - h_norm)
        } else {
            0.0
        };
        Self {
            nnzrow_frac,
            mean_strip_frac,
            nnz: nnz_est,
            h_norm,
            ssf,
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a.max(1), b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A learned SSF decision threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsfThreshold {
    /// SSF values strictly above this choose B-stationary.
    pub threshold: f64,
    /// Training classification accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Algorithm choice produced by the heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Choice {
    /// B-stationary with (online-) tiled DCSR.
    BStationary,
    /// C-stationary with untiled CSR/DCSR.
    CStationary,
}

/// Classify a matrix given its SSF value and a threshold.
pub fn classify(ssf: f64, th: &SsfThreshold) -> Choice {
    if ssf > th.threshold {
        Choice::BStationary
    } else {
        Choice::CStationary
    }
}

/// Learn `SSF_th` from profiled `(ssf, t_c / t_b)` pairs, where `t_c / t_b`
/// is C-stationary time over B-stationary time (y-axis of Figure 4; > 1
/// means B-stationary is better). Sweeps every candidate split between
/// consecutive sorted SSF values and returns the accuracy-maximizing one.
/// Ties prefer the larger threshold (conservatively defaulting to
/// C-stationary, which never pays atomics).
pub fn learn_threshold(points: &[(f64, f64)]) -> SsfThreshold {
    if points.is_empty() {
        return SsfThreshold {
            threshold: 0.0,
            accuracy: 1.0,
        };
    }
    let mut sorted: Vec<(f64, bool)> = points
        .iter()
        .map(|&(ssf, ratio)| (ssf, ratio > 1.0)) // true = B-stationary wins
        .collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    let total = sorted.len();
    let total_b: usize = sorted.iter().filter(|&&(_, b)| b).count();
    // With threshold below everything, all classified B-stationary.
    let mut correct = total_b;
    let mut best = (f64::NEG_INFINITY, correct);
    // Moving the threshold past element i reclassifies it as C-stationary.
    for i in 0..total {
        if sorted[i].1 {
            correct -= 1; // was correctly B, now wrong
        } else {
            correct += 1; // was wrongly B, now correctly C
        }
        let candidate = if i + 1 < total {
            // midpoint in log space when both positive, else arithmetic
            let (a, b) = (sorted[i].0, sorted[i + 1].0);
            if a > 0.0 && b > 0.0 {
                ((a.ln() + b.ln()) / 2.0).exp() // geometric mean
            } else {
                (a + b) / 2.0
            }
        } else {
            sorted[i].0 + 1.0
        };
        if correct >= best.1 {
            best = (candidate, correct);
        }
    }
    SsfThreshold {
        threshold: best.0,
        accuracy: best.1 as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;

    fn csr(n: usize, entries: &[(u32, u32)]) -> Csr {
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals = vec![1.0f32; entries.len()];
        Csr::from_coo(&Coo::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn profile_terms_match_hand_computation() {
        // 8x8, strips of 4. Entries: row0 cols {0,1}, row4 col 6.
        let m = csr(8, &[(0, 0), (0, 1), (4, 6)]);
        let p = SsfProfile::compute(&m, 4);
        assert!((p.nnzrow_frac - 2.0 / 8.0).abs() < 1e-12);
        // Strip 0: row 0 => 1/8; strip 1: row 4 => 1/8. Mean = 1/8.
        assert!((p.mean_strip_frac - 0.125).abs() < 1e-12);
        assert_eq!(p.nnz, 3.0);
        // Segments: {2, 1} => H = -(2/3 ln 2/3 + 1/3 ln 1/3)/ln 3.
        let h = -((2.0 / 3.0f64) * (2.0 / 3.0f64).ln() + (1.0 / 3.0) * (1.0 / 3.0f64).ln())
            / 3.0f64.ln();
        assert!((p.h_norm - h).abs() < 1e-12);
        let expected = (0.25 / 0.125) * 3.0 * (1.0 - h);
        assert!((p.ssf - expected).abs() < 1e-9);
    }

    #[test]
    fn clustered_matrix_scores_higher_than_scattered() {
        // Same nnz, same dimension; clustered (one dense row block) should
        // produce a larger SSF than perfectly scattered non-zeros.
        let clustered = csr(
            16,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
            ],
        );
        let scattered = csr(
            16,
            &[
                (0, 0),
                (1, 4),
                (2, 8),
                (3, 12),
                (5, 1),
                (6, 5),
                (9, 9),
                (12, 13),
            ],
        );
        let pc = SsfProfile::compute(&clustered, 4);
        let ps = SsfProfile::compute(&scattered, 4);
        assert!(
            pc.ssf > ps.ssf,
            "clustered {} vs scattered {}",
            pc.ssf,
            ps.ssf
        );
    }

    #[test]
    fn empty_matrix_scores_zero() {
        let m = csr(8, &[]);
        assert_eq!(SsfProfile::compute(&m, 4).ssf, 0.0);
    }

    #[test]
    fn sampled_profile_tracks_full_profile() {
        use nmt_matgen::{generators, GenKind, MatrixDesc};
        let cases = [
            GenKind::Uniform { density: 0.01 },
            GenKind::ZipfRows {
                density: 0.01,
                exponent: 1.3,
            },
            GenKind::RowBursts {
                density: 0.02,
                burst_len: 16,
            },
        ];
        for (i, kind) in cases.into_iter().enumerate() {
            let a = generators::generate(&MatrixDesc::new("s", 1024, kind, i as u64 + 1));
            let full = SsfProfile::compute(&a, 16);
            let sampled = SsfProfile::compute_sampled(&a, 16, 256, 42);
            // Per-row statistics estimate within loose relative bounds.
            assert!(
                (sampled.nnz - full.nnz).abs() / full.nnz.max(1.0) < 0.3,
                "case {i}: nnz est {} vs {}",
                sampled.nnz,
                full.nnz
            );
            assert!(
                (sampled.nnzrow_frac - full.nnzrow_frac).abs() < 0.15,
                "case {i}: nnzrow {} vs {}",
                sampled.nnzrow_frac,
                full.nnzrow_frac
            );
            // SSF within an order of magnitude preserves classification
            // against any threshold not adjacent to the true value.
            let ratio = (sampled.ssf.max(1e-12) / full.ssf.max(1e-12)).ln().abs();
            assert!(
                ratio < std::f64::consts::LN_10,
                "case {i}: ssf {} vs {}",
                sampled.ssf,
                full.ssf
            );
        }
    }

    #[test]
    fn sampled_profile_ordering_preserved() {
        use nmt_matgen::{generators, GenKind, MatrixDesc};
        let scattered = generators::generate(&MatrixDesc::new(
            "u",
            1024,
            GenKind::Uniform { density: 0.01 },
            9,
        ));
        let clustered = generators::generate(&MatrixDesc::new(
            "rb",
            1024,
            GenKind::RowBursts {
                density: 0.02,
                burst_len: 16,
            },
            10,
        ));
        let s = SsfProfile::compute_sampled(&scattered, 16, 128, 7);
        let c = SsfProfile::compute_sampled(&clustered, 16, 128, 7);
        assert!(
            c.ssf > s.ssf,
            "sampled SSF must still rank clustered above scattered"
        );
    }

    #[test]
    fn sampled_profile_degenerate_inputs() {
        let empty = csr(16, &[]);
        let p = SsfProfile::compute_sampled(&empty, 4, 8, 1);
        assert_eq!(p.ssf, 0.0);
        let tiny = csr(4, &[(0, 0)]);
        // Sample larger than the matrix falls back to the exact profile.
        let exact = SsfProfile::compute(&tiny, 4);
        let p = SsfProfile::compute_sampled(&tiny, 4, 100, 1);
        assert_eq!(p, exact);
        let p = SsfProfile::compute_sampled(&tiny, 4, 0, 1);
        assert_eq!(p.ssf, 0.0);
    }

    #[test]
    fn learn_threshold_separable() {
        // Perfectly separable: ssf < 10 => C better, ssf > 10 => B better.
        let points: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let ssf = i as f64;
                let ratio = if ssf > 10.0 { 2.0 } else { 0.5 };
                (ssf, ratio)
            })
            .collect();
        let th = learn_threshold(&points);
        assert_eq!(th.accuracy, 1.0);
        assert!(
            th.threshold > 10.0 && th.threshold <= 11.0,
            "th = {}",
            th.threshold
        );
        assert_eq!(classify(5.0, &th), Choice::CStationary);
        assert_eq!(classify(15.0, &th), Choice::BStationary);
    }

    #[test]
    fn learn_threshold_with_noise() {
        // One mislabeled point on each side: accuracy (n-2)/n.
        let mut points: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let ssf = i as f64;
                let ratio = if ssf > 10.0 { 2.0 } else { 0.5 };
                (ssf, ratio)
            })
            .collect();
        points[2].1 = 3.0; // ssf=3 claims B wins
        points[15].1 = 0.4; // ssf=16 claims C wins
        let th = learn_threshold(&points);
        assert!((th.accuracy - 18.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn learn_threshold_degenerate() {
        assert_eq!(learn_threshold(&[]).accuracy, 1.0);
        // All one class: threshold extreme, accuracy 1.
        let all_b: Vec<(f64, f64)> = (1..5).map(|i| (i as f64, 2.0)).collect();
        let th = learn_threshold(&all_b);
        assert_eq!(th.accuracy, 1.0);
        assert!(all_b
            .iter()
            .all(|&(s, _)| classify(s, &th) == Choice::BStationary));
        let all_c: Vec<(f64, f64)> = (1..5).map(|i| (i as f64, 0.5)).collect();
        let th = learn_threshold(&all_c);
        assert_eq!(th.accuracy, 1.0);
        assert!(all_c
            .iter()
            .all(|&(s, _)| classify(s, &th) == Choice::CStationary));
    }
}
