//! Analytical models and the SSF algorithm-selection heuristic.
//!
//! Three pieces of the paper live here:
//!
//! * [`traffic`] — the compulsory memory-traffic model of **Table 1** for
//!   the A-/B-/C-stationary dataflows, plus the §2 bytes/FLOP estimate that
//!   establishes SpMM as bandwidth-bound.
//! * [`entropy`] — the normalized entropy `H_norm` of the non-zero
//!   distribution over tile row segments (Eq. 1).
//! * [`ssf`] — the **Sparsity Skewness Function** (Eq. 2) and the learned
//!   threshold `SSF_th` that picks B-stationary vs C-stationary per input
//!   matrix with >93 % accuracy (Figure 4).

#![warn(missing_docs)]

pub mod entropy;
pub mod ssf;
pub mod traffic;

pub use entropy::normalized_entropy;
pub use ssf::{classify, learn_threshold, SsfProfile, SsfThreshold};
pub use traffic::{bytes_per_flop, Dataflow, TrafficEstimate, TrafficModel};
