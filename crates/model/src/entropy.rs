//! Normalized entropy of the non-zero distribution (Eq. 1, §3.1.4).
//!
//! `H_norm` divides Shannon's entropy of the per-row-segment nnz shares by
//! Hartley's entropy (`log A.nnz`), yielding a `[0, 1]` randomness measure:
//! 1 when every non-zero is its own row segment (perfectly scattered), 0
//! when a single row segment holds everything (maximally clustered). The
//! SSF heuristic uses `1 - H_norm` as its skewness term.

use nmt_formats::{Csr, SparseMatrix};

/// Per-row-segment non-zero counts for a tiling of width `tile_w`.
///
/// A row segment is the run of one matrix row inside one vertical strip —
/// the granularity at which tiled DCSR stores rows (`t.rows` in Eq. 1; the
/// tile height does not split segments further because a row intersects
/// exactly one tile per strip).
pub fn row_segment_counts(csr: &Csr, tile_w: usize) -> Vec<usize> {
    assert!(tile_w > 0, "tile width must be positive");
    let mut out = Vec::new();
    for r in 0..csr.shape().nrows {
        let (cols, _) = csr.row(r);
        let mut i = 0;
        while i < cols.len() {
            let strip = cols[i] as usize / tile_w;
            let end = ((strip + 1) * tile_w) as u32;
            let mut len = 0;
            while i < cols.len() && cols[i] < end {
                len += 1;
                i += 1;
            }
            out.push(len);
        }
    }
    out
}

/// Normalized entropy over arbitrary segment counts.
///
/// Returns 0 for degenerate inputs (≤ 1 non-zero), where randomness is
/// undefined and the matrix is trivially "clustered".
pub fn normalized_entropy_of(segments: &[usize]) -> f64 {
    let total: usize = segments.iter().sum();
    if total <= 1 {
        return 0.0;
    }
    let totalf = total as f64;
    let h: f64 = segments
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / totalf;
            -p * p.ln()
        })
        .sum();
    (h / totalf.ln()).clamp(0.0, 1.0)
}

/// `H_norm` of a matrix under `tile_w`-wide strips (Eq. 1).
pub fn normalized_entropy(csr: &Csr, tile_w: usize) -> f64 {
    normalized_entropy_of(&row_segment_counts(csr, tile_w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;

    fn csr(n: usize, entries: &[(u32, u32)]) -> Csr {
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals = vec![1.0f32; entries.len()];
        Csr::from_coo(&Coo::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn segments_split_at_strip_boundaries() {
        // Row 0 has cols {1,2, 5,6}: two segments of 2 under 4-wide strips.
        let m = csr(8, &[(0, 1), (0, 2), (0, 5), (0, 6)]);
        assert_eq!(row_segment_counts(&m, 4), vec![2, 2]);
        // One 8-wide strip: a single segment of 4.
        assert_eq!(row_segment_counts(&m, 8), vec![4]);
    }

    #[test]
    fn scattered_matrix_has_entropy_one() {
        // Every non-zero in its own segment: p_i = 1/nnz, H = log nnz.
        let m = csr(8, &[(0, 0), (1, 4), (2, 2), (3, 6), (4, 1), (5, 5)]);
        let h = normalized_entropy(&m, 4);
        assert!((h - 1.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn clustered_matrix_has_low_entropy() {
        // All 4 entries in one row segment: H = 0.
        let m = csr(8, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(normalized_entropy(&m, 4), 0.0);
    }

    #[test]
    fn entropy_monotone_in_scatter() {
        // One heavy segment + a few singletons sits between the extremes.
        let clustered = csr(
            16,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
            ],
        );
        let mixed = csr(
            16,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (4, 8),
                (5, 12),
                (6, 5),
                (7, 9),
            ],
        );
        let scattered = csr(
            16,
            &[
                (0, 0),
                (1, 4),
                (2, 8),
                (3, 12),
                (4, 1),
                (5, 5),
                (6, 9),
                (7, 13),
            ],
        );
        let hc = normalized_entropy(&clustered, 4);
        let hm = normalized_entropy(&mixed, 4);
        let hs = normalized_entropy(&scattered, 4);
        assert!(hc < hm && hm < hs, "hc={hc} hm={hm} hs={hs}");
        assert!((hs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = csr(4, &[]);
        assert_eq!(normalized_entropy(&empty, 4), 0.0);
        let single = csr(4, &[(1, 1)]);
        assert_eq!(normalized_entropy(&single, 4), 0.0);
        assert_eq!(normalized_entropy_of(&[]), 0.0);
        assert_eq!(normalized_entropy_of(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_bounded() {
        // Random-ish pattern stays within [0, 1].
        let entries: Vec<(u32, u32)> = (0..64u32).map(|i| ((i * 13) % 32, (i * 29) % 32)).collect();
        let m = csr(32, &entries);
        let h = normalized_entropy(&m, 8);
        assert!((0.0..=1.0).contains(&h), "h = {h}");
    }
}
