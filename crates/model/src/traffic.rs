//! Table 1: compulsory memory-traffic comparison of the tiling dataflows,
//! and the §2 bytes/FLOP model.
//!
//! Model assumptions, straight from the table's footnote: matrices are
//! `n × n`, tiles `k × k`, atomic bandwidth costs 2× a plain access,
//! `A.nnz = d·n² ≪ n²`, and under a uniform distribution
//! `n_nnzrow ≈ n_nnzcol ≈ n` and `n_nnzrow_strip ≈ (1-(1-d)^k)·n`.

use nmt_formats::{Csr, SparseMatrix, StorageSize};
use serde::{Deserialize, Serialize};

/// Which matrix stays resident in shared memory (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Sparse-matrix stationary: B and C revisited; "the largest number of
    /// memory accesses across all three tiling techniques".
    AStationary,
    /// Dense-input stationary: B tiles loaded once into shared memory,
    /// partial C updated atomically.
    BStationary,
    /// Output stationary: C written once, B refetched per A strip.
    CStationary,
}

impl Dataflow {
    /// All dataflows, for iteration.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::AStationary,
        Dataflow::BStationary,
        Dataflow::CStationary,
    ];
}

/// Compulsory traffic estimate, in bytes, per operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficEstimate {
    /// Traffic to the sparse input A.
    pub a_bytes: f64,
    /// Traffic to the dense input B.
    pub b_bytes: f64,
    /// Traffic to the output C, including the 2× atomic factor where the
    /// dataflow produces partial contributions.
    pub c_bytes: f64,
}

impl TrafficEstimate {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.a_bytes + self.b_bytes + self.c_bytes
    }
}

/// Inputs to the Table 1 formulas, measurable from a concrete matrix or
/// constructed synthetically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Matrix dimension `n` (square).
    pub n: f64,
    /// Tile edge `k`.
    pub k: f64,
    /// Non-zero count of A.
    pub nnz: f64,
    /// Bytes of the CSR representation of A (`size(A.csr)`).
    pub size_a_csr: f64,
    /// Number of rows with ≥ 1 non-zero (`n_nnzrow`).
    pub nnzrow: f64,
    /// Number of columns with ≥ 1 non-zero (`n_nnzcol`).
    pub nnzcol: f64,
    /// Mean number of non-zero rows per vertical strip
    /// (`n_nnzrow_strip`).
    pub nnzrow_strip: f64,
    /// Bytes per element (4 for fp32).
    pub elem_bytes: f64,
    /// Atomic cost factor (2× per the footnote).
    pub atomic_factor: f64,
}

impl TrafficModel {
    /// Build the model inputs by measuring a concrete CSR matrix.
    pub fn measure(csr: &Csr, k: usize) -> Self {
        let shape = csr.shape();
        let stats = nmt_formats::StripStats::compute(csr, k);
        Self {
            n: shape.nrows as f64,
            k: k as f64,
            nnz: csr.nnz() as f64,
            size_a_csr: csr.storage_bytes() as f64,
            nnzrow: csr.nonzero_rows() as f64,
            nnzcol: csr.nonzero_cols() as f64,
            nnzrow_strip: stats.mean_fraction * shape.nrows as f64,
            elem_bytes: 4.0,
            atomic_factor: 2.0,
        }
    }

    /// Build the uniform-distribution synthetic model of the footnote:
    /// `n_nnzrow = n_nnzcol = n`, `n_nnzrow_strip = (1-(1-d)^k)·n`.
    pub fn uniform(n: usize, k: usize, density: f64) -> Self {
        let nf = n as f64;
        let kf = k as f64;
        let nnz = density * nf * nf;
        // size(A.csr) = 8·nnz + 4·(n+1) (§2).
        let size_a_csr = 8.0 * nnz + 4.0 * (nf + 1.0);
        let nnzrow_strip = (1.0 - (1.0 - density).powf(kf)) * nf;
        Self {
            n: nf,
            k: kf,
            nnz,
            size_a_csr,
            nnzrow: nf * (1.0 - (1.0 - density).powf(nf)).min(1.0),
            nnzcol: nf * (1.0 - (1.0 - density).powf(nf)).min(1.0),
            nnzrow_strip,
            elem_bytes: 4.0,
            atomic_factor: 2.0,
        }
    }

    /// Number of vertical strips `n / k`.
    fn strips(&self) -> f64 {
        (self.n / self.k).max(1.0)
    }

    /// Evaluate the Table 1 row for `dataflow`. Entries expressed in
    /// elements in the paper are converted to bytes via `elem_bytes`.
    pub fn estimate(&self, dataflow: Dataflow) -> TrafficEstimate {
        self.estimate_with_ncols(dataflow, self.n)
    }

    /// [`estimate`](Self::estimate) generalized to a dense operand with
    /// `ncols` columns instead of the paper's square `n × n` B/C. Every
    /// Table 1 term that scales with the dense width (`× n` in the paper)
    /// scales with `ncols` here; the A terms are unchanged. This is what
    /// lets the analytical model be validated against simulator runs,
    /// which use a fixed K ≪ n per experiment scale.
    pub fn estimate_with_ncols(&self, dataflow: Dataflow, ncols: f64) -> TrafficEstimate {
        let eb = self.elem_bytes;
        // Partial-contribution output traffic shared by A- and B-stationary:
        // n_nnzrow_strip × (n/k) × ncols × atomic_factor (Table 1, C column).
        let partial_c = self.nnzrow_strip * self.strips() * ncols * self.atomic_factor * eb;
        match dataflow {
            Dataflow::AStationary => TrafficEstimate {
                // Single fetch of A.
                a_bytes: self.size_a_csr,
                // Multiple fetches of B: A.nnz × ncols.
                b_bytes: self.nnz * ncols * eb,
                c_bytes: partial_c,
            },
            Dataflow::BStationary => TrafficEstimate {
                // A refetched once per vertical strip of B tiles.
                a_bytes: self.size_a_csr * self.strips(),
                // Single fetch of B: each non-zero column read once.
                b_bytes: self.nnzcol * ncols * eb,
                c_bytes: partial_c,
            },
            Dataflow::CStationary => TrafficEstimate {
                // A refetched once per k-wide vertical strip of B — ncols/k
                // strips, treated continuously like `strips()` (= n/k in
                // the paper's square case, a single pass when B is only k
                // columns wide).
                a_bytes: self.size_a_csr * (ncols / self.k).max(1.0),
                // Multiple fetches of B: A.nnz × ncols.
                b_bytes: self.nnz * ncols * eb,
                // Single update of C: n_nnzrow × ncols.
                c_bytes: self.nnzrow * ncols * eb,
            },
        }
    }

    /// Predicted DRAM traffic for the paper's proposal — B-stationary with
    /// the CSC stream tiled **online** by the near-memory engine (§3.2).
    ///
    /// The engine removes Table 1's B-stationary A-refetch penalty: A
    /// (stored CSC, same size as CSR) streams through the FB partitions
    /// once, and the produced DCSR tiles ride the crossbar instead of
    /// DRAM. B and C traffic match offline B-stationary.
    pub fn estimate_online_bstationary(&self, ncols: f64) -> TrafficEstimate {
        let offline = self.estimate_with_ncols(Dataflow::BStationary, ncols);
        TrafficEstimate {
            a_bytes: self.size_a_csr,
            ..offline
        }
    }
}

/// The §2 bytes/FLOP estimate for untiled CSR SpMM on an `n × n` problem:
/// `(8·nnz + 4·(n+1) + 8·n²) / (2·nnz·n)`.
///
/// Note: the paper quotes 5.1 bytes/FLOP "using typical values … N = 20 K
/// and 0.1 % density". Plugging those exact values into the printed formula
/// yields 0.2 bytes/FLOP — still an order of magnitude above the ~0.06
/// bytes/FLOP a GV100 can feed (870 GB/s / 15.7 TFLOP/s), so the
/// memory-bound conclusion is unchanged. `sec2_bytes_per_flop` reports both
/// numbers; see EXPERIMENTS.md.
pub fn bytes_per_flop(n: usize, nnz: usize) -> f64 {
    let nf = n as f64;
    let nnzf = nnz as f64;
    if nnzf == 0.0 || nf == 0.0 {
        return f64::INFINITY;
    }
    let bytes = 8.0 * nnzf + 4.0 * (nf + 1.0) + 8.0 * nf * nf;
    let flops = 2.0 * nnzf * nf;
    bytes / flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;

    #[test]
    fn a_stationary_fetches_a_once() {
        let m = TrafficModel::uniform(1024, 64, 0.01);
        let a = m.estimate(Dataflow::AStationary);
        let b = m.estimate(Dataflow::BStationary);
        assert!((a.a_bytes - m.size_a_csr).abs() < 1e-6);
        assert!((b.a_bytes / a.a_bytes - m.strips()).abs() < 1e-6);
    }

    #[test]
    fn a_stationary_is_worst_overall() {
        // §3.1.1: A-stationary "results in the largest number of memory
        // accesses across all three tiling techniques".
        let m = TrafficModel::uniform(4096, 64, 0.001);
        let a = m.estimate(Dataflow::AStationary).total();
        let b = m.estimate(Dataflow::BStationary).total();
        let c = m.estimate(Dataflow::CStationary).total();
        assert!(a >= b && a >= c, "a={a} b={b} c={c}");
    }

    #[test]
    fn uniform_distribution_favours_c_stationary() {
        // §3.1.2: "With the uniform non-zero distribution … C-stationary
        // provides better performance than B-stationary because B-stationary
        // suffers from the atomic bandwidth."
        let m = TrafficModel::uniform(8192, 64, 0.001);
        let b = m.estimate(Dataflow::BStationary).total();
        let c = m.estimate(Dataflow::CStationary).total();
        assert!(c < b, "c={c} b={b}");
    }

    #[test]
    fn skewed_strips_favour_b_stationary() {
        // When most strips have few non-zero rows (skewed distribution),
        // B-stationary's partial-C traffic collapses while C-stationary's
        // B traffic is unchanged — §3.1.2's argument for the heuristic.
        let n = 8192.0;
        let skewed = TrafficModel {
            n,
            k: 64.0,
            nnz: 0.001 * n * n,
            size_a_csr: 8.0 * 0.001 * n * n + 4.0 * (n + 1.0),
            nnzrow: n * 0.2,
            nnzcol: n * 0.9,
            // Very few non-zero rows per strip: clustered distribution.
            nnzrow_strip: 16.0,
            elem_bytes: 4.0,
            atomic_factor: 2.0,
        };
        let b = skewed.estimate(Dataflow::BStationary).total();
        let c = skewed.estimate(Dataflow::CStationary).total();
        assert!(b < c, "b={b} c={c}");
    }

    #[test]
    fn measured_model_matches_matrix() {
        let coo = Coo::from_triplets(8, 8, &[0, 0, 3, 5, 7], &[1, 6, 3, 0, 7], &[1.0; 5]).unwrap();
        let csr = Csr::from_coo(&coo);
        let m = TrafficModel::measure(&csr, 4);
        assert_eq!(m.n, 8.0);
        assert_eq!(m.nnz, 5.0);
        assert_eq!(m.nnzrow, 4.0);
        assert_eq!(m.nnzcol, 5.0);
        assert_eq!(m.size_a_csr, csr.storage_bytes() as f64);
        // Strip 0 (cols 0..4): rows 0,3,5 -> 3; strip 1 (cols 4..8): rows 0,7 -> 2.
        assert!((m.nnzrow_strip - 2.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_strip_occupancy_saturates_with_density() {
        let lo = TrafficModel::uniform(1024, 64, 1e-4);
        let hi = TrafficModel::uniform(1024, 64, 1e-1);
        assert!(lo.nnzrow_strip < hi.nnzrow_strip);
        assert!(hi.nnzrow_strip <= 1024.0);
    }

    #[test]
    fn bytes_per_flop_formula() {
        // Exact formula check on easy numbers.
        let got = bytes_per_flop(10, 5);
        let expected = (8.0 * 5.0 + 4.0 * 11.0 + 800.0) / (2.0 * 5.0 * 10.0);
        assert!((got - expected).abs() < 1e-12);
        // Paper's example inputs: the formula yields ~0.2 (see doc note).
        let paper = bytes_per_flop(20_000, (0.001 * 20_000.0f64 * 20_000.0) as usize);
        assert!((paper - 0.2).abs() < 0.01, "got {paper}");
        // Memory-bound either way: a GV100 sustains ~0.055 bytes/FLOP.
        assert!(paper > 0.055);
        assert!(bytes_per_flop(0, 0).is_infinite());
    }

    #[test]
    fn estimate_with_ncols_scales_dense_terms_only() {
        let m = TrafficModel::uniform(1024, 64, 0.01);
        for df in Dataflow::ALL {
            let full = m.estimate(df);
            let half = m.estimate_with_ncols(df, m.n / 2.0);
            // B and C traffic scale linearly with the dense width.
            assert!((half.b_bytes * 2.0 - full.b_bytes).abs() < 1e-6);
            assert!((half.c_bytes * 2.0 - full.c_bytes).abs() < 1e-6);
        }
        // A traffic ignores the dense width for A- and B-stationary …
        for df in [Dataflow::AStationary, Dataflow::BStationary] {
            let half = m.estimate_with_ncols(df, m.n / 2.0);
            assert!((half.a_bytes - m.estimate(df).a_bytes).abs() < 1e-9);
        }
        // … but C-stationary refetches A per k-wide strip of B: a single
        // pass when B is k columns, n/k passes in the square case.
        let narrow = m.estimate_with_ncols(Dataflow::CStationary, m.k);
        assert!((narrow.a_bytes - m.size_a_csr).abs() < 1e-9);
        // ncols = n reproduces the square-matrix estimate exactly.
        for df in Dataflow::ALL {
            assert_eq!(m.estimate(df), m.estimate_with_ncols(df, m.n));
        }
    }

    #[test]
    fn online_bstationary_removes_a_refetch() {
        let m = TrafficModel::uniform(4096, 64, 0.001);
        let offline = m.estimate_with_ncols(Dataflow::BStationary, 64.0);
        let online = m.estimate_online_bstationary(64.0);
        // §3.2: the engine reads A once instead of once per strip.
        assert!((online.a_bytes - m.size_a_csr).abs() < 1e-9);
        assert!((offline.a_bytes / online.a_bytes - m.strips()).abs() < 1e-6);
        // B and C traffic are untouched.
        assert_eq!(online.b_bytes, offline.b_bytes);
        assert_eq!(online.c_bytes, offline.c_bytes);
        assert!(online.total() < offline.total());
    }

    #[test]
    fn estimate_total_sums_components() {
        let m = TrafficModel::uniform(512, 64, 0.01);
        for df in Dataflow::ALL {
            let e = m.estimate(df);
            assert!((e.total() - (e.a_bytes + e.b_bytes + e.c_bytes)).abs() < 1e-9);
            assert!(e.a_bytes > 0.0 && e.b_bytes > 0.0 && e.c_bytes > 0.0);
        }
    }
}
