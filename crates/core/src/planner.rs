//! The SSF-directed SpMM planner.

use crate::audit::{DecisionAudit, KernelAudit};
use nmt_engine::{conversion_energy_pj, ConversionStats};
use nmt_fault::{FaultPlan, FaultRecord, FaultSite};
use nmt_formats::{Csr, Dcsr, DenseMatrix, SparseMatrix};
use nmt_kernels::{bstat_tiled_dcsr_online_obs, csrmm_cusparse, dcsrmm_row_per_warp};
use nmt_model::ssf::{classify, Choice, SsfProfile, SsfThreshold};
use nmt_model::{Dataflow, TrafficModel};
use nmt_obs::ObsContext;
use nmt_sim::{publish_kernel_stats, Gpu, GpuConfig, KernelStats, SimError};
use serde::{Deserialize, Serialize};

/// Default decision threshold, learned offline by
/// `bench/src/bin/fig04_ssf_scatter.rs` over the synthetic suite (the
/// analogue of the paper's `SSF_th` learned over ~4,000 SuiteSparse
/// matrices). Re-learn with [`nmt_model::learn_threshold`] when the
/// workload population changes.
pub const DEFAULT_SSF_THRESHOLD: SsfThreshold = SsfThreshold {
    threshold: 2.55e4,
    accuracy: 0.82,
};

/// Which concrete kernel the planner ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// C-stationary, untiled CSR, row-per-warp (also the baseline).
    CStationaryCsr,
    /// C-stationary, untiled DCSR, row-per-warp.
    CStationaryDcsr,
    /// B-stationary, online-tiled DCSR via the near-memory engine.
    BStationaryOnline,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Simulated GPU.
    pub gpu: GpuConfig,
    /// Strip/tile width (64 in the paper).
    pub tile_w: usize,
    /// Tile height (64 in the paper).
    pub tile_h: usize,
    /// Decision threshold.
    pub threshold: SsfThreshold,
    /// Optional fault-injection plan, installed on every GPU the planner
    /// builds except the baseline reference. Engine-side escalations
    /// trigger the degraded-mode B→C-stationary fallback; memory-site
    /// faults only perturb timing.
    pub fault: Option<FaultPlan>,
}

impl PlannerConfig {
    /// The paper's configuration: GV100, 64×64 tiles, learned threshold.
    pub fn paper_default() -> Self {
        Self {
            gpu: GpuConfig::gv100(),
            tile_w: 64,
            tile_h: 64,
            threshold: DEFAULT_SSF_THRESHOLD,
            fault: None,
        }
    }

    /// Small configuration for fast tests.
    pub fn test_small() -> Self {
        Self {
            gpu: GpuConfig::test_small(),
            tile_w: 16,
            tile_h: 16,
            threshold: DEFAULT_SSF_THRESHOLD,
            fault: None,
        }
    }

    /// The same configuration with a fault plan installed.
    pub fn with_fault(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }
}

/// Everything the planner learned and did for one matrix.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The SSF profile (terms + value).
    pub profile: SsfProfile,
    /// Heuristic decision.
    pub choice: Choice,
    /// Kernel actually executed.
    pub algorithm: Algorithm,
    /// Stats of the chosen kernel.
    pub stats: KernelStats,
    /// Stats of the cuSPARSE-baseline stand-in on the same matrix.
    pub baseline_stats: KernelStats,
    /// `baseline_time / chosen_time` (> 1 is a win).
    pub speedup: f64,
    /// Engine activity (present when the online path ran).
    pub engine: Option<ConversionStats>,
    /// Engine conversion energy in picojoules (0 for C-stationary).
    pub engine_energy_pj: f64,
    /// The computed product `C = A × B` from the chosen (or fallback)
    /// kernel — the differential fault tests compare this bitwise.
    pub c: DenseMatrix,
    /// The escalated fault this run absorbed via the degraded-mode
    /// fallback, if any.
    pub fault: Option<FaultRecord>,
}

/// The auto-tuning SpMM planner.
#[derive(Debug, Clone)]
pub struct SpmmPlanner {
    config: PlannerConfig,
}

impl SpmmPlanner {
    /// Build a planner.
    pub fn new(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Profile a matrix and return the heuristic decision without running
    /// anything.
    pub fn plan(&self, a: &Csr) -> (SsfProfile, Choice) {
        let profile = SsfProfile::compute(a, self.config.tile_w);
        let choice = classify(profile.ssf, &self.config.threshold);
        (profile, choice)
    }

    /// Profile, choose, execute and compare against the baseline.
    ///
    /// Each kernel runs on a fresh, cold-cache GPU instance so timings are
    /// comparable (the paper measures isolated kernels too).
    pub fn execute(&self, a: &Csr, b: &DenseMatrix) -> Result<PlanReport, SimError> {
        self.execute_with_obs(a, b, &ObsContext::disabled())
    }

    /// [`execute`](Self::execute) with an observability context: the run is
    /// decomposed into spans (`planner.execute` → `planner.plan`,
    /// `planner.baseline`, `planner.chosen`, with the chosen kernel's
    /// `engine.convert`/`kernels.launch` nested below), per-phase wall
    /// clock lands in `planner.phase.*_ns` gauges, and both kernels'
    /// [`KernelStats`] are bridged into the registry under
    /// `kernels.baseline.*` / `kernels.chosen.*`.
    pub fn execute_with_obs(
        &self,
        a: &Csr,
        b: &DenseMatrix,
        obs: &ObsContext,
    ) -> Result<PlanReport, SimError> {
        let mut root = obs.span("planner.execute");
        root.counter("nrows", a.shape().nrows as f64);
        root.counter("nnz", a.nnz() as f64);

        let t0 = obs.recorder.now_ns();
        let (profile, choice) = {
            let mut s = obs.span("planner.plan");
            let (profile, choice) = self.plan(a);
            s.counter("ssf", profile.ssf);
            (profile, choice)
        };
        let t_plan = obs.recorder.now_ns();
        obs.flight.record(
            nmt_obs::EventSite::PlannerPhase,
            0,
            a.shape().nrows as u64,
            a.nnz() as u64,
        );

        let baseline = {
            let _s = obs.span("planner.baseline");
            let mut base_gpu = Gpu::new(self.config.gpu.clone())?;
            csrmm_cusparse(&mut base_gpu, a, b)?
        };
        publish_kernel_stats(obs, "kernels.baseline", &baseline.stats);
        let t_baseline = obs.recorder.now_ns();
        obs.flight.record(
            nmt_obs::EventSite::PlannerPhase,
            1,
            a.shape().nrows as u64,
            a.nnz() as u64,
        );

        let chosen_span = obs.span("planner.chosen");
        let mut gpu = Gpu::new(self.config.gpu.clone())?;
        gpu.set_fault_plan(self.config.fault);
        let (algorithm, stats, c, engine, fault) = match choice {
            Choice::CStationary => {
                let dcsr = {
                    let _s = obs.span("engine.convert");
                    Dcsr::from_csr(a)
                };
                let run = {
                    let _s = obs.span("kernels.launch");
                    dcsrmm_row_per_warp(&mut gpu, &dcsr, b)?
                };
                (Algorithm::CStationaryDcsr, run.stats, run.c, None, None)
            }
            Choice::BStationary => {
                let csc = a.to_csc();
                match bstat_tiled_dcsr_online_obs(
                    &mut gpu,
                    &csc,
                    b,
                    self.config.tile_w,
                    self.config.tile_h,
                    obs,
                ) {
                    Ok(online) => (
                        Algorithm::BStationaryOnline,
                        online.run.stats,
                        online.run.c,
                        Some(online.engine),
                        None,
                    ),
                    Err(SimError::InjectedFault { site, key, detail }) => {
                        // Degraded mode: the engine-side fault survived its
                        // strip retry, so fall back per-matrix to the
                        // untiled C-stationary path — the paper's hybrid
                        // switch used as a fault response. Fresh cold-cache
                        // GPU, same fault plan (memory-site faults remain
                        // active but are timing-only).
                        obs.flight.record(
                            nmt_obs::EventSite::PlannerFallback,
                            site.code() as u32,
                            key,
                            0,
                        );
                        let mut fb_gpu = Gpu::new(self.config.gpu.clone())?;
                        fb_gpu.set_fault_plan(self.config.fault);
                        let dcsr = {
                            let _s = obs.span("engine.convert");
                            Dcsr::from_csr(a)
                        };
                        let run = {
                            let _s = obs.span("kernels.launch");
                            dcsrmm_row_per_warp(&mut fb_gpu, &dcsr, b)?
                        };
                        gpu = fb_gpu;
                        let record = FaultRecord {
                            retried: site == FaultSite::ConvertStrip,
                            fell_back: true,
                            site,
                            key,
                            detail,
                        };
                        (Algorithm::CStationaryDcsr, run.stats, run.c, None, Some(record))
                    }
                    Err(other) => return Err(other),
                }
            }
        };
        drop(chosen_span);
        let t_chosen = obs.recorder.now_ns();
        obs.flight.record(
            nmt_obs::EventSite::PlannerPhase,
            2,
            a.shape().nrows as u64,
            a.nnz() as u64,
        );

        publish_kernel_stats(obs, "kernels.chosen", &stats);
        if fault.is_some() {
            obs.metrics.counter_add("fault.fallbacks", 1);
        }
        let mem = gpu.memory();
        if mem.fault_dram_spikes() > 0 {
            obs.metrics
                .counter_add("fault.dram_spikes", mem.fault_dram_spikes());
        }
        if mem.fault_prefetch_overflows() > 0 {
            obs.metrics
                .counter_add("fault.prefetch_overflows", mem.fault_prefetch_overflows());
        }
        obs.metrics
            .gauge_set("planner.phase.plan_ns", (t_plan - t0) as f64);
        obs.metrics
            .gauge_set("planner.phase.baseline_ns", (t_baseline - t_plan) as f64);
        obs.metrics
            .gauge_set("planner.phase.chosen_ns", (t_chosen - t_baseline) as f64);

        debug_assert!(
            c.approx_eq(&baseline.c, 1e-3),
            "planner kernel disagrees with baseline output"
        );
        let engine_energy_pj = engine
            .as_ref()
            .map_or(0.0, |e| conversion_energy_pj(e, false));
        let speedup = baseline.stats.total_ns / stats.total_ns.max(1e-9);
        root.counter("speedup", speedup);
        Ok(PlanReport {
            profile,
            choice,
            algorithm,
            speedup,
            stats,
            baseline_stats: baseline.stats,
            engine,
            engine_energy_pj,
            c,
            fault,
        })
    }

    /// Audit one matrix end to end: profile it, run the baseline **and
    /// both** candidate kernels on fresh cold-cache GPUs, compare the
    /// heuristic's pick against the measured oracle, and cross-check each
    /// kernel's per-class DRAM bytes against the Table 1 analytical model
    /// ([`TrafficModel::estimate_with_ncols`] for C-stationary,
    /// [`TrafficModel::estimate_online_bstationary`] for the engine path).
    ///
    /// The audit is published into `obs` ([`DecisionAudit::publish`]):
    /// model relative-error gauges/histograms and mispick counters, which
    /// accumulate across calls sharing one context. Everything in the
    /// returned [`DecisionAudit`] is simulated, so two calls with the same
    /// inputs produce identical audits.
    pub fn explain(
        &self,
        name: &str,
        a: &Csr,
        b: &DenseMatrix,
        obs: &ObsContext,
    ) -> Result<DecisionAudit, SimError> {
        let mut root = obs.span("planner.explain");
        root.counter("nnz", a.nnz() as f64);
        let (profile, chosen) = self.plan(a);

        let baseline = {
            let _s = obs.span("audit.baseline");
            let mut gpu = Gpu::new(self.config.gpu.clone())?;
            csrmm_cusparse(&mut gpu, a, b)?
        };
        let model = TrafficModel::measure(a, self.config.tile_w);
        let k = b.ncols() as f64;
        let c_run = {
            let _s = obs.span("audit.cstationary");
            let mut gpu = Gpu::new(self.config.gpu.clone())?;
            gpu.set_fault_plan(self.config.fault);
            dcsrmm_row_per_warp(&mut gpu, &Dcsr::from_csr(a), b)?
        };
        // The B-stationary candidate may escalate an injected fault; the
        // degraded-mode policy then substitutes the untiled C-stationary
        // run for this matrix's b-side, exactly as `execute` would.
        let mut fault = None;
        let (b_stats, b_predicted) = {
            let _s = obs.span("audit.bstationary");
            let mut gpu = Gpu::new(self.config.gpu.clone())?;
            gpu.set_fault_plan(self.config.fault);
            match bstat_tiled_dcsr_online_obs(
                &mut gpu,
                &a.to_csc(),
                b,
                self.config.tile_w,
                self.config.tile_h,
                obs,
            ) {
                Ok(online) => (online.run.stats, model.estimate_online_bstationary(k)),
                Err(SimError::InjectedFault { site, key, detail }) => {
                    obs.flight.record(
                        nmt_obs::EventSite::PlannerFallback,
                        site.code() as u32,
                        key,
                        0,
                    );
                    fault = Some(FaultRecord {
                        retried: site == FaultSite::ConvertStrip,
                        fell_back: chosen == Choice::BStationary,
                        site,
                        key,
                        detail,
                    });
                    let mut fb_gpu = Gpu::new(self.config.gpu.clone())?;
                    fb_gpu.set_fault_plan(self.config.fault);
                    let run = dcsrmm_row_per_warp(&mut fb_gpu, &Dcsr::from_csr(a), b)?;
                    // The degraded side actually ran C-stationary, so
                    // validate it against the C-stationary prediction.
                    (run.stats, model.estimate_with_ncols(Dataflow::CStationary, k))
                }
                Err(other) => return Err(other),
            }
        };

        let baseline_ns = baseline.stats.total_ns;
        let cstationary = KernelAudit::new(
            "c-stationary",
            baseline_ns,
            &c_run.stats,
            &model.estimate_with_ncols(Dataflow::CStationary, k),
        );
        let bstationary = KernelAudit::new(
            if fault.is_some() {
                "b-stationary-fallback"
            } else {
                "b-stationary-online"
            },
            baseline_ns,
            &b_stats,
            &b_predicted,
        );

        // Oracle: measured winner; ties prefer C-stationary (no atomics).
        let oracle = if b_stats.total_ns < c_run.stats.total_ns {
            Choice::BStationary
        } else {
            Choice::CStationary
        };
        let time_of = |c: Choice| match c {
            Choice::CStationary => c_run.stats.total_ns,
            Choice::BStationary => b_stats.total_ns,
        };
        let mispick = chosen != oracle;
        let mispick_cost = time_of(chosen) / time_of(oracle).max(1e-9);
        root.counter("mispick", mispick as u64 as f64);

        let audit = DecisionAudit {
            matrix: name.to_string(),
            nrows: a.shape().nrows,
            ncols: a.shape().ncols,
            nnz: a.nnz(),
            k: b.ncols(),
            tile: self.config.tile_w,
            profile,
            threshold: self.config.threshold.threshold,
            chosen,
            oracle,
            mispick,
            mispick_cost,
            baseline_ns,
            cstationary,
            bstationary,
            fault,
        };
        audit.publish(obs);
        Ok(audit)
    }

    /// Run *both* algorithms and report `(t_cstationary, t_bstationary)` —
    /// the measurement behind Figure 4's y-axis and threshold learning.
    pub fn profile_both(&self, a: &Csr, b: &DenseMatrix) -> Result<(f64, f64), SimError> {
        let dcsr = Dcsr::from_csr(a);
        let mut g1 = Gpu::new(self.config.gpu.clone())?;
        let c_run = dcsrmm_row_per_warp(&mut g1, &dcsr, b)?;
        let mut g2 = Gpu::new(self.config.gpu.clone())?;
        let online = bstat_tiled_dcsr_online_obs(
            &mut g2,
            &a.to_csc(),
            b,
            self.config.tile_w,
            self.config.tile_h,
            &ObsContext::disabled(),
        )?;
        Ok((c_run.stats.total_ns, online.run.stats.total_ns))
    }
}

/// Convenience: run the full planner once with the paper configuration.
pub fn auto_spmm(a: &Csr, b: &DenseMatrix) -> Result<PlanReport, SimError> {
    if a.shape().ncols != b.nrows() {
        return Err(SimError::ShapeMismatch {
            detail: format!(
                "inner dimensions must agree: A has {} cols, B has {} rows",
                a.shape().ncols,
                b.nrows()
            ),
        });
    }
    SpmmPlanner::new(PlannerConfig::paper_default()).execute(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};

    fn planner() -> SpmmPlanner {
        SpmmPlanner::new(PlannerConfig::test_small())
    }

    #[test]
    fn plan_is_deterministic() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.01 },
            1,
        ));
        let p = planner();
        let (prof1, c1) = p.plan(&a);
        let (prof2, c2) = p.plan(&a);
        assert_eq!(prof1, prof2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn execute_produces_correct_output_and_speedup() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::ZipfRows {
                density: 0.01,
                exponent: 1.2,
            },
            2,
        ));
        let b = random_dense(128, 16, 3);
        let report = planner().execute(&a, &b).unwrap();
        assert!(report.speedup > 0.0);
        assert!(report.baseline_stats.total_ns > 0.0);
        match report.algorithm {
            Algorithm::BStationaryOnline => {
                assert!(report.engine.is_some());
                assert!(report.engine_energy_pj > 0.0);
            }
            _ => assert!(report.engine.is_none()),
        }
    }

    #[test]
    fn forced_thresholds_select_each_branch() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.02 },
            4,
        ));
        let b = random_dense(128, 16, 5);
        let mut cfg = PlannerConfig::test_small();
        cfg.threshold = SsfThreshold {
            threshold: f64::INFINITY,
            accuracy: 1.0,
        };
        let rep = SpmmPlanner::new(cfg.clone()).execute(&a, &b).unwrap();
        assert_eq!(rep.algorithm, Algorithm::CStationaryDcsr);
        cfg.threshold = SsfThreshold {
            threshold: -1.0,
            accuracy: 1.0,
        };
        let rep = SpmmPlanner::new(cfg).execute(&a, &b).unwrap();
        assert_eq!(rep.algorithm, Algorithm::BStationaryOnline);
        assert_eq!(rep.engine.as_ref().unwrap().elements as usize, a.nnz());
    }

    #[test]
    fn execute_with_obs_builds_nested_plan_convert_kernel_spans() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.02 },
            8,
        ));
        let b = random_dense(128, 16, 9);
        let mut cfg = PlannerConfig::test_small();
        cfg.threshold = SsfThreshold {
            threshold: -1.0,
            accuracy: 1.0,
        };
        let obs = ObsContext::enabled();
        let rep = SpmmPlanner::new(cfg)
            .execute_with_obs(&a, &b, &obs)
            .unwrap();
        assert_eq!(rep.algorithm, Algorithm::BStationaryOnline);

        let spans = obs.recorder.snapshot();
        let by_name = |n: &str| {
            spans
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing span {n}"))
        };
        let root = by_name("planner.execute");
        assert_eq!(root.parent, None);
        for child in ["planner.plan", "planner.baseline", "planner.chosen"] {
            assert_eq!(by_name(child).parent, Some(root.id), "{child}");
        }
        let chosen = by_name("planner.chosen");
        assert_eq!(by_name("engine.convert").parent, Some(chosen.id));
        assert_eq!(by_name("kernels.launch").parent, Some(chosen.id));

        // Per-phase wall clock and both kernel-stat bridges landed.
        for g in [
            "planner.phase.plan_ns",
            "planner.phase.baseline_ns",
            "planner.phase.chosen_ns",
        ] {
            assert!(obs.metrics.gauge(g).is_some(), "missing gauge {g}");
        }
        assert!(obs.metrics.counter("kernels.baseline.dram_bytes.mat_a") > 0);
        assert!(obs.metrics.counter("kernels.chosen.dram_bytes.mat_a") > 0);
        assert!(obs
            .metrics
            .gauge("engine.pipeline.prefetch_hit_rate")
            .is_some());
        assert!(obs.metrics.gauge("engine.comparator.occupancy").is_some());
    }

    #[test]
    fn execute_and_execute_with_obs_agree() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            96,
            GenKind::Uniform { density: 0.02 },
            10,
        ));
        let b = random_dense(96, 8, 11);
        let p = planner();
        let plain = p.execute(&a, &b).unwrap();
        let obs = ObsContext::enabled();
        let observed = p.execute_with_obs(&a, &b, &obs).unwrap();
        assert_eq!(plain.algorithm, observed.algorithm);
        assert_eq!(plain.choice, observed.choice);
        assert!((plain.speedup - observed.speedup).abs() < 1e-9);
    }

    #[test]
    fn explain_is_deterministic_and_consistent_with_execute() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::ZipfRows {
                density: 0.02,
                exponent: 1.2,
            },
            12,
        ));
        let b = random_dense(128, 16, 13);
        let p = planner();
        let audit1 = p.explain("t", &a, &b, &ObsContext::disabled()).unwrap();
        let audit2 = p.explain("t", &a, &b, &ObsContext::disabled()).unwrap();
        assert_eq!(audit1, audit2, "explain must be reproducible");
        assert_eq!(audit1.to_json(), audit2.to_json());

        // The audit's chosen side matches what execute actually runs.
        let report = p.execute(&a, &b).unwrap();
        assert_eq!(audit1.chosen, report.choice);
        assert!((audit1.baseline_ns - report.baseline_stats.total_ns).abs() < 1e-9);
        assert!((audit1.chosen_audit().time_ns - report.stats.total_ns).abs() < 1e-9);
        assert!((audit1.chosen_speedup() - report.speedup).abs() < 1e-9);

        // Oracle bookkeeping is internally consistent.
        let faster = audit1
            .cstationary
            .time_ns
            .min(audit1.bstationary.time_ns);
        assert!((audit1.oracle_audit().time_ns - faster).abs() < 1e-9);
        assert_eq!(audit1.mispick, audit1.chosen != audit1.oracle);
        assert!(audit1.mispick_cost >= 1.0 - 1e-12);
    }

    #[test]
    fn explain_publishes_model_validation_metrics() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.02 },
            14,
        ));
        let b = random_dense(128, 16, 15);
        let obs = ObsContext::enabled();
        let audit = planner().explain("t", &a, &b, &obs).unwrap();
        for df in ["c_stationary", "b_stationary_online"] {
            for class in ["mat_a", "mat_b", "mat_c"] {
                let name = format!("audit.model.{df}.rel_err.{class}");
                assert!(obs.metrics.gauge(&name).is_some(), "missing {name}");
            }
            assert!(obs
                .metrics
                .gauge(&format!("audit.model.{df}.mean_abs_rel_err"))
                .is_some());
        }
        assert_eq!(obs.metrics.counter("audit.decisions"), 1);
        assert_eq!(
            obs.metrics.counter("audit.mispicks"),
            audit.mispick as u64
        );
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.histograms["audit.model.abs_rel_err_pct"].count, 6);
        // Both kernels produced per-class DRAM byte maps and validations.
        for side in [&audit.cstationary, &audit.bstationary] {
            assert_eq!(side.validation.len(), 3);
            assert!(side.dram_bytes["mat_a"] > 0);
            assert!(side.time_ns > 0.0);
        }
    }

    #[test]
    fn forced_fault_triggers_audited_fallback() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::Uniform { density: 0.02 },
            20,
        ));
        let b = random_dense(128, 16, 21);
        let mut cfg = PlannerConfig::test_small();
        cfg.threshold = SsfThreshold {
            threshold: -1.0,
            accuracy: 1.0,
        };
        // Rate 1.0 fires every site, so the B-stationary attempt escalates
        // and the planner must fall back — never panic, never Err.
        let faulted = SpmmPlanner::new(cfg.clone().with_fault(Some(FaultPlan::from_rate(1, 1.0))))
            .execute(&a, &b)
            .unwrap();
        assert_eq!(faulted.choice, Choice::BStationary, "heuristic unchanged");
        assert_eq!(faulted.algorithm, Algorithm::CStationaryDcsr, "ran fallback");
        let rec = faulted.fault.as_ref().expect("fault audited");
        assert!(rec.fell_back);
        assert!(faulted.engine.is_none());

        // The fallback output is bitwise-identical to a clean run forced
        // down the C-stationary path (memory faults are timing-only).
        cfg.threshold = SsfThreshold {
            threshold: f64::INFINITY,
            accuracy: 1.0,
        };
        let clean = SpmmPlanner::new(cfg).execute(&a, &b).unwrap();
        assert_eq!(clean.algorithm, Algorithm::CStationaryDcsr);
        assert_eq!(faulted.c, clean.c);
    }

    #[test]
    fn faulted_execute_and_explain_agree() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            128,
            GenKind::ZipfRows {
                density: 0.02,
                exponent: 1.2,
            },
            22,
        ));
        let b = random_dense(128, 16, 23);
        let cfg = PlannerConfig::test_small().with_fault(Some(FaultPlan::from_rate(3, 1.0)));
        let p = SpmmPlanner::new(cfg);
        let report = p.execute(&a, &b).unwrap();
        let audit = p.explain("t", &a, &b, &ObsContext::disabled()).unwrap();
        let audit2 = p.explain("t", &a, &b, &ObsContext::disabled()).unwrap();
        assert_eq!(audit, audit2, "faulted explain must be reproducible");
        assert!(audit.fault.is_some(), "explain audits the escalation");
        assert_eq!(audit.chosen, report.choice);
        assert!((audit.chosen_audit().time_ns - report.stats.total_ns).abs() < 1e-9);
        if report.choice == Choice::BStationary {
            assert_eq!(audit.bstationary.dataflow, "b-stationary-fallback");
            assert!(report.fault.is_some());
        }
    }

    #[test]
    fn zero_rate_plan_matches_unfaulted_run() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            96,
            GenKind::Uniform { density: 0.02 },
            24,
        ));
        let b = random_dense(96, 8, 25);
        let clean = planner().execute(&a, &b).unwrap();
        let planned =
            SpmmPlanner::new(PlannerConfig::test_small().with_fault(Some(FaultPlan::new(7, 0))))
                .execute(&a, &b)
                .unwrap();
        assert_eq!(clean.c, planned.c);
        assert_eq!(clean.algorithm, planned.algorithm);
        assert!((clean.speedup - planned.speedup).abs() < 1e-12);
        assert!(planned.fault.is_none());
    }

    #[test]
    fn profile_both_returns_positive_times() {
        let a = generators::generate(&MatrixDesc::new(
            "t",
            96,
            GenKind::BlockDiag {
                block: 16,
                fill: 0.3,
                background: 0.001,
            },
            6,
        ));
        let b = random_dense(96, 16, 7);
        let (tc, tb) = planner().profile_both(&a, &b).unwrap();
        assert!(tc > 0.0 && tb > 0.0);
    }
}
