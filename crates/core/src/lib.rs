//! `nmt` — the auto-tuned SpMM planner: the paper's full system, end to end.
//!
//! Given a sparse matrix, the planner (a) profiles it with the SSF
//! heuristic (Eq. 2), (b) picks the algorithm the paper's Figure 16 hybrid
//! would pick — C-stationary untiled DCSR for low-SSF matrices,
//! B-stationary *online-tiled* DCSR (CSC in memory, near-memory transform
//! engine at the FB partitions) for high-SSF matrices — and (c) executes
//! the choice on the GPU timing simulator, reporting speedup over the
//! cuSPARSE-baseline stand-in along with traffic, stalls and engine
//! energy.
//!
//! * [`planner`] — profile → choose → execute → [`planner::PlanReport`].
//! * [`audit`] — the decision audit behind `nmt-cli audit`: SSF inputs,
//!   chosen-vs-oracle dataflow, mispick cost, and Table-1
//!   model-vs-measured traffic validation per matrix.
//! * [`api`] — the `GetDCSRTile` request queue of Figure 11: per-FB-
//!   partition FIFOs feeding the conversion units.
//! * [`fingerprint`] — content fingerprints over the audit's decision
//!   inputs: the serve-layer plan-cache key.
//! * [`multi_gpu`] — the §6.2 large-scale streaming model.

#![warn(missing_docs)]

pub mod api;
pub mod audit;
pub mod fingerprint;
pub mod multi_gpu;
pub mod planner;
pub mod report;

pub use api::{ConversionQueue, GetDcsrTileRequest, TimedTileResponse};
pub use audit::{DecisionAudit, KernelAudit, TrafficValidation};
pub use fingerprint::MatrixFingerprint;
pub use multi_gpu::{LargeSpmmProblem, MultiGpuConfig, MultiGpuReport};
pub use planner::{Algorithm, PlanReport, PlannerConfig, SpmmPlanner, DEFAULT_SSF_THRESHOLD};
pub use report::{RunRecord, SuiteReport};
