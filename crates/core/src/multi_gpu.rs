//! Large-scale SpMM across multiple GPUs (§6.2, Figure 18).
//!
//! For matrices whose dense operands dwarf GPU memory ("a 2M × 2M dense
//! matrix is as large as 17 TB"), the paper streams vertical strips of B
//! and C through each GPU: A is replicated (it is the most space-efficient
//! operand, especially as CSC), each GPU computes complete vertical C
//! strips to minimize inter-node communication, and CUDA-stream-style
//! double buffering overlaps transfers with compute. The near-memory
//! engine fits naturally: each GPU converts its A copy online, so no tiled
//! metadata ever crosses the interconnect.

use nmt_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// A large SpMM problem: `C[n][k] = A[n][n] × B[n][k]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LargeSpmmProblem {
    /// Sparse dimension.
    pub n: u64,
    /// Number of dense vectors (columns of B).
    pub k: u64,
    /// Non-zeros of A.
    pub nnz: u64,
}

impl LargeSpmmProblem {
    /// Bytes of the CSC image of A (replicated per GPU).
    pub fn a_csc_bytes(&self) -> u64 {
        8 * self.nnz + 4 * (self.n + 1)
    }

    /// Bytes of the full dense B (and C) matrices.
    pub fn dense_bytes(&self) -> u64 {
        4 * self.n * self.k
    }
}

/// Multi-GPU system description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuConfig {
    /// Per-GPU configuration.
    pub gpu: GpuConfig,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Usable device memory per GPU in bytes (16 GB HBM2 minus headroom).
    pub device_mem_bytes: u64,
    /// Host↔device interconnect bandwidth per GPU in GB/s.
    pub link_gbps: f64,
}

impl MultiGpuConfig {
    /// Default: GV100s on PCIe 3.0 x16 (~12 GB/s effective).
    pub fn gv100_cluster(num_gpus: usize) -> Self {
        Self {
            gpu: GpuConfig::gv100(),
            num_gpus,
            device_mem_bytes: 14 * (1 << 30),
            link_gbps: 12.0,
        }
    }
}

/// Outcome of planning a streamed multi-GPU SpMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuReport {
    /// Columns of B/C assigned to each GPU (vertical strip width).
    pub cols_per_gpu: u64,
    /// Number of B/C chunks streamed through each GPU.
    pub chunks_per_gpu: u64,
    /// Bytes streamed in+out per GPU (B in, C out).
    pub stream_bytes_per_gpu: u64,
    /// Estimated transfer time per GPU in seconds.
    pub transfer_s: f64,
    /// Estimated compute (DRAM-roofline) time per GPU in seconds.
    pub compute_s: f64,
    /// Estimated wall-clock with transfer/compute overlap in seconds.
    pub overlapped_s: f64,
    /// True when compute fully hides the streaming (compute-bound).
    pub compute_hides_transfer: bool,
}

/// Plan the §6.2 streaming execution. Returns `Err` with an explanation if
/// even a single B/C column chunk plus the replicated A cannot fit.
pub fn plan_streamed_spmm(
    p: &LargeSpmmProblem,
    sys: &MultiGpuConfig,
) -> Result<MultiGpuReport, String> {
    if sys.num_gpus == 0 {
        return Err("need at least one GPU".into());
    }
    let a_bytes = p.a_csc_bytes();
    if a_bytes >= sys.device_mem_bytes {
        return Err(format!(
            "replicated A ({a_bytes} B) does not fit in device memory ({} B)",
            sys.device_mem_bytes
        ));
    }
    // Each GPU owns a vertical strip of B and C: k / num_gpus columns.
    let cols_per_gpu = p.k.div_ceil(sys.num_gpus as u64).max(1);
    // Working set per streamed chunk: double-buffered B chunk + C chunk.
    let free = sys.device_mem_bytes - a_bytes;
    let col_bytes = 4 * p.n; // one dense column of B (and of C)
                             // chunk_cols chosen so 2 chunks of B + 2 of C fit in free memory.
    let chunk_cols = (free / (4 * col_bytes)).max(1).min(cols_per_gpu);
    let chunks_per_gpu = cols_per_gpu.div_ceil(chunk_cols);
    // Stream B in and C out once each.
    let stream_bytes_per_gpu = 2 * col_bytes * cols_per_gpu;
    let transfer_s = stream_bytes_per_gpu as f64 / (sys.link_gbps * 1e9);
    // DRAM roofline for the on-GPU kernel: every B element read once from
    // HBM, every C written once (atomics amortized by tiling), A read
    // n/tile_w times (engine streams CSC per strip).
    let tile_w = 64u64;
    let a_traffic = a_bytes * (p.n.div_ceil(tile_w)).min(64); // strips, capped by reuse
    let bc_traffic = 2 * col_bytes * cols_per_gpu;
    let dram_s = (a_traffic + bc_traffic) as f64 / (sys.gpu.total_bandwidth_gbps() * 1e9);
    let compute_s = dram_s;
    let overlapped_s =
        transfer_s.max(compute_s) + transfer_s.min(compute_s) / chunks_per_gpu as f64;
    Ok(MultiGpuReport {
        cols_per_gpu,
        chunks_per_gpu,
        stream_bytes_per_gpu,
        transfer_s,
        compute_s,
        overlapped_s,
        compute_hides_transfer: compute_s >= transfer_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_problem() -> LargeSpmmProblem {
        // 2M x 2M, density 1e-5 -> 40M nnz; dense B/C = 16 TB each at
        // k = n (the paper's 17 TB example counts one matrix).
        LargeSpmmProblem {
            n: 2_000_000,
            k: 2_000_000,
            nnz: 40_000_000,
        }
    }

    #[test]
    fn paper_example_dense_size() {
        // "2M × 2M dense matrix is as large as 17 TB" (decimal TB, fp32).
        let p = big_problem();
        let tb = p.dense_bytes() as f64 / 1e12;
        assert!((tb - 16.0).abs() < 1.0, "dense = {tb} TB");
    }

    #[test]
    fn a_fits_but_dense_does_not() {
        let p = big_problem();
        let sys = MultiGpuConfig::gv100_cluster(4);
        assert!(p.a_csc_bytes() < sys.device_mem_bytes);
        assert!(p.dense_bytes() > sys.device_mem_bytes);
        let plan = plan_streamed_spmm(&p, &sys).unwrap();
        assert_eq!(plan.cols_per_gpu, 500_000);
        assert!(plan.chunks_per_gpu > 1, "must stream in multiple chunks");
        assert!(plan.overlapped_s > 0.0);
    }

    #[test]
    fn more_gpus_reduce_wall_clock() {
        let p = big_problem();
        let t1 = plan_streamed_spmm(&p, &MultiGpuConfig::gv100_cluster(1)).unwrap();
        let t8 = plan_streamed_spmm(&p, &MultiGpuConfig::gv100_cluster(8)).unwrap();
        assert!(t8.overlapped_s < t1.overlapped_s / 4.0);
    }

    #[test]
    fn oversized_a_is_rejected() {
        let p = LargeSpmmProblem {
            n: 1 << 31,
            k: 16,
            nnz: 4_000_000_000,
        };
        let sys = MultiGpuConfig::gv100_cluster(2);
        assert!(plan_streamed_spmm(&p, &sys).is_err());
    }

    #[test]
    fn overlap_never_exceeds_sum() {
        let p = big_problem();
        let plan = plan_streamed_spmm(&p, &MultiGpuConfig::gv100_cluster(4)).unwrap();
        assert!(plan.overlapped_s <= plan.transfer_s + plan.compute_s + 1e-9);
        assert!(plan.overlapped_s >= plan.transfer_s.max(plan.compute_s) - 1e-9);
    }

    #[test]
    fn zero_gpus_rejected() {
        let p = big_problem();
        let mut sys = MultiGpuConfig::gv100_cluster(1);
        sys.num_gpus = 0;
        assert!(plan_streamed_spmm(&p, &sys).is_err());
    }
}
