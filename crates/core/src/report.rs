//! Structured reports: serializable summaries of planner runs, suitable
//! for the CLI's `--json` output and for suite-level aggregation.

use crate::planner::{Algorithm, PlanReport};
use nmt_model::ssf::Choice;
use nmt_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A flat, serializable record of one planner execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Matrix identifier (caller-supplied).
    pub matrix: String,
    /// Rows of the sparse matrix.
    pub nrows: usize,
    /// Non-zero count.
    pub nnz: usize,
    /// The SSF value (Eq. 2).
    pub ssf: f64,
    /// Normalized entropy term.
    pub h_norm: f64,
    /// Heuristic decision.
    pub choice: String,
    /// Kernel executed.
    pub algorithm: String,
    /// Baseline (cuSPARSE stand-in) time in ns.
    pub baseline_ns: f64,
    /// Chosen-kernel time in ns.
    pub chosen_ns: f64,
    /// Speedup over the baseline.
    pub speedup: f64,
    /// Engine elements converted (0 on the C-stationary path).
    pub engine_elements: u64,
    /// Engine conversion energy in picojoules.
    pub engine_energy_pj: f64,
    /// Memory-stall share of the chosen kernel.
    pub memory_stall: f64,
    /// Flattened observability metrics (`None` unless the run was executed
    /// with an enabled [`nmt_obs::ObsContext`] and the caller embedded the
    /// snapshot via [`RunRecord::with_metrics`]).
    pub metrics: Option<BTreeMap<String, f64>>,
}

impl RunRecord {
    /// Flatten a [`PlanReport`] with a matrix name and its dimensions.
    pub fn from_report(
        matrix: impl Into<String>,
        nrows: usize,
        nnz: usize,
        r: &PlanReport,
    ) -> Self {
        Self {
            matrix: matrix.into(),
            nrows,
            nnz,
            ssf: r.profile.ssf,
            h_norm: r.profile.h_norm,
            choice: match r.choice {
                Choice::BStationary => "b-stationary".into(),
                Choice::CStationary => "c-stationary".into(),
            },
            algorithm: match r.algorithm {
                Algorithm::CStationaryCsr => "cstat-csr".into(),
                Algorithm::CStationaryDcsr => "cstat-dcsr".into(),
                Algorithm::BStationaryOnline => "bstat-online".into(),
            },
            baseline_ns: r.baseline_stats.total_ns,
            chosen_ns: r.stats.total_ns,
            speedup: r.speedup,
            engine_elements: r.engine.as_ref().map_or(0, |e| e.elements),
            engine_energy_pj: r.engine_energy_pj,
            memory_stall: r.stats.stall_breakdown().memory,
            metrics: None,
        }
    }

    /// Embed a flattened metrics snapshot (counters, gauges, histogram
    /// count/mean — see [`MetricsSnapshot::flat`]) into the record.
    pub fn with_metrics(mut self, snapshot: &MetricsSnapshot) -> Self {
        self.metrics = Some(snapshot.flat());
        self
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("record serializes")
    }
}

/// Aggregate over a set of runs (a suite sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Individual records.
    pub runs: Vec<RunRecord>,
    /// Geometric-mean speedup across runs.
    pub geomean_speedup: f64,
    /// Fraction of runs that improved on the baseline.
    pub improved_fraction: f64,
    /// Runs routed to the B-stationary (online engine) path.
    pub bstationary_count: usize,
    /// Runs routed to the C-stationary path.
    pub cstationary_count: usize,
}

impl SuiteReport {
    /// Aggregate a set of records.
    pub fn aggregate(runs: Vec<RunRecord>) -> Self {
        let positive: Vec<f64> = runs
            .iter()
            .map(|r| r.speedup)
            .filter(|&s| s > 0.0)
            .collect();
        let geomean_speedup = if positive.is_empty() {
            0.0
        } else {
            (positive.iter().map(|s| s.ln()).sum::<f64>() / positive.len() as f64).exp()
        };
        let improved = runs.iter().filter(|r| r.speedup > 1.0).count();
        let b = runs.iter().filter(|r| r.choice == "b-stationary").count();
        let c = runs.len() - b;
        Self {
            improved_fraction: if runs.is_empty() {
                0.0
            } else {
                improved as f64 / runs.len() as f64
            },
            geomean_speedup,
            bstationary_count: b,
            cstationary_count: c,
            runs,
        }
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Render a compact text summary.
    pub fn render_summary(&self) -> String {
        format!(
            "{} matrices | geomean speedup {:.2}x | improved {:.0}% | routed B/C = {}/{}",
            self.runs.len(),
            self.geomean_speedup,
            self.improved_fraction * 100.0,
            self.bstationary_count,
            self.cstationary_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlannerConfig, SpmmPlanner};
    use nmt_formats::SparseMatrix;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};

    fn record(kind: GenKind, seed: u64) -> RunRecord {
        let a = generators::generate(&MatrixDesc::new("m", 128, kind, seed));
        let b = random_dense(128, 16, seed ^ 1);
        let report = SpmmPlanner::new(PlannerConfig::test_small())
            .execute(&a, &b)
            .expect("runs");
        RunRecord::from_report("m", a.shape().nrows, a.nnz(), &report)
    }

    #[test]
    fn record_roundtrips_through_json() {
        let r = record(GenKind::Uniform { density: 0.02 }, 1);
        let json = r.to_json();
        let back: RunRecord = serde_json::from_str(&json).expect("parses");
        // Floats may lose an ULP through the pretty printer; compare
        // structurally with tolerance.
        assert_eq!(back.matrix, r.matrix);
        assert_eq!(back.nnz, r.nnz);
        assert_eq!(back.choice, r.choice);
        assert_eq!(back.algorithm, r.algorithm);
        assert!((back.ssf - r.ssf).abs() <= r.ssf.abs() * 1e-12);
        assert!((back.speedup - r.speedup).abs() <= r.speedup * 1e-12);
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn record_embeds_and_roundtrips_metrics() {
        let a = generators::generate(&MatrixDesc::new(
            "m",
            128,
            GenKind::Uniform { density: 0.02 },
            5,
        ));
        let b = random_dense(128, 16, 6);
        let obs = nmt_obs::ObsContext::enabled();
        let report = SpmmPlanner::new(PlannerConfig::test_small())
            .execute_with_obs(&a, &b, &obs)
            .expect("runs");
        let r = RunRecord::from_report("m", a.shape().nrows, a.nnz(), &report)
            .with_metrics(&obs.metrics.snapshot());
        let flat = r.metrics.as_ref().expect("metrics embedded");
        assert!(flat.contains_key("planner.phase.plan_ns"));
        assert!(flat.contains_key("kernels.chosen.dram_bytes.mat_a"));
        let back: RunRecord = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(back.metrics, r.metrics);
    }

    #[test]
    fn suite_aggregation() {
        let runs = vec![
            record(GenKind::Uniform { density: 0.02 }, 2),
            record(
                GenKind::RowBursts {
                    density: 0.02,
                    burst_len: 8,
                },
                3,
            ),
        ];
        let report = SuiteReport::aggregate(runs);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.bstationary_count + report.cstationary_count, 2);
        assert!(report.geomean_speedup > 0.0);
        let summary = report.render_summary();
        assert!(summary.contains("2 matrices"));
        let back: SuiteReport = serde_json::from_str(&report.to_json()).expect("parses");
        assert_eq!(back.runs.len(), report.runs.len());
        assert!((back.geomean_speedup - report.geomean_speedup).abs() < 1e-9);
        assert_eq!(back.bstationary_count, report.bstationary_count);
    }

    #[test]
    fn empty_suite_is_handled() {
        let report = SuiteReport::aggregate(vec![]);
        assert_eq!(report.geomean_speedup, 0.0);
        assert_eq!(report.improved_fraction, 0.0);
        assert!(report.render_summary().contains("0 matrices"));
    }
}
