//! The planner decision audit: *why* a dataflow was picked, whether the
//! oracle agrees, and how far the Table 1 analytical traffic model drifts
//! from the simulator's measured per-class bytes.
//!
//! [`SpmmPlanner::explain`](crate::planner::SpmmPlanner::explain) produces
//! a [`DecisionAudit`] per matrix: the SSF inputs behind the heuristic,
//! both candidate kernels' measured times and per-[`TrafficClass`] DRAM
//! bytes, the analytical predictions for each, signed relative errors per
//! operand, the chosen and oracle dataflows, and the cost of a mispick.
//! [`DecisionAudit::publish`] turns the comparison into registry gauges
//! and histograms so model drift is an alarmable metric, not a footnote.

use nmt_fault::FaultRecord;
use nmt_model::ssf::{Choice, SsfProfile};
use nmt_model::TrafficEstimate;
use nmt_obs::ObsContext;
use nmt_sim::{KernelStats, TrafficClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Predicted-vs-measured traffic for one operand of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficValidation {
    /// Operand label (`mat_a` / `mat_b` / `mat_c`).
    pub class: String,
    /// Table-1 analytical prediction in bytes.
    pub predicted_bytes: f64,
    /// Simulator-measured DRAM bytes.
    pub measured_bytes: u64,
    /// Signed relative error `(measured − predicted) / predicted`
    /// (0 when the prediction is 0 bytes).
    pub rel_err: f64,
}

/// One candidate kernel's side of the audit: measured run + model check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAudit {
    /// Dataflow label (`c-stationary` / `b-stationary-online`).
    pub dataflow: String,
    /// Measured kernel time in ns.
    pub time_ns: f64,
    /// Speedup over the cuSPARSE-baseline stand-in.
    pub speedup: f64,
    /// Measured DRAM bytes per [`TrafficClass`] label.
    pub dram_bytes: BTreeMap<String, u64>,
    /// Per-operand model validation (A, B, C).
    pub validation: Vec<TrafficValidation>,
    /// Mean of `|rel_err|` over the validated operands.
    pub mean_abs_rel_err: f64,
}

impl KernelAudit {
    /// Build one side of the audit from a measured run and the analytical
    /// prediction for the dataflow that produced it.
    pub fn new(
        dataflow: impl Into<String>,
        baseline_ns: f64,
        stats: &KernelStats,
        predicted: &TrafficEstimate,
    ) -> Self {
        let mut dram_bytes = BTreeMap::new();
        for class in TrafficClass::ALL {
            dram_bytes.insert(class.label().to_string(), stats.dram_traffic.get(class));
        }
        let pairs = [
            (TrafficClass::MatA, predicted.a_bytes),
            (TrafficClass::MatB, predicted.b_bytes),
            (TrafficClass::MatC, predicted.c_bytes),
        ];
        let validation: Vec<TrafficValidation> = pairs
            .into_iter()
            .map(|(class, predicted_bytes)| {
                let measured_bytes = stats.dram_traffic.get(class);
                let rel_err = if predicted_bytes > 0.0 {
                    (measured_bytes as f64 - predicted_bytes) / predicted_bytes
                } else {
                    0.0
                };
                TrafficValidation {
                    class: class.label().to_string(),
                    predicted_bytes,
                    measured_bytes,
                    rel_err,
                }
            })
            .collect();
        let mean_abs_rel_err =
            validation.iter().map(|v| v.rel_err.abs()).sum::<f64>() / validation.len() as f64;
        Self {
            dataflow: dataflow.into(),
            time_ns: stats.total_ns,
            speedup: baseline_ns / stats.total_ns.max(1e-9),
            dram_bytes,
            validation,
            mean_abs_rel_err,
        }
    }
}

/// Everything the planner knew — and should have known — about one matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionAudit {
    /// Matrix identifier (caller-supplied).
    pub matrix: String,
    /// Rows of A.
    pub nrows: usize,
    /// Columns of A.
    pub ncols: usize,
    /// Non-zeros of A.
    pub nnz: usize,
    /// Dense-operand width (columns of B).
    pub k: usize,
    /// Strip/tile width the heuristic and engine used.
    pub tile: usize,
    /// The SSF profile — every input the heuristic saw.
    pub profile: SsfProfile,
    /// The decision threshold in force.
    pub threshold: f64,
    /// Heuristic pick.
    pub chosen: Choice,
    /// Measured-best pick (`profile_both` winner; ties go C-stationary,
    /// which never pays atomics).
    pub oracle: Choice,
    /// Whether the heuristic disagreed with the oracle.
    pub mispick: bool,
    /// `chosen_time / oracle_time` — 1.0 when the pick was right, the
    /// slowdown factor paid for the wrong pick otherwise.
    pub mispick_cost: f64,
    /// Baseline (cuSPARSE stand-in) time in ns.
    pub baseline_ns: f64,
    /// The C-stationary candidate (untiled DCSR, row per warp).
    pub cstationary: KernelAudit,
    /// The B-stationary candidate (online-tiled DCSR via the engine).
    pub bstationary: KernelAudit,
    /// Injected-fault outcome, when the B-stationary attempt escalated a
    /// fault and the degraded-mode policy substituted the untiled
    /// C-stationary run (`fell_back` is true when the heuristic would
    /// actually have routed this matrix to the engine path).
    pub fault: Option<FaultRecord>,
}

impl DecisionAudit {
    /// The audit side the heuristic picked.
    pub fn chosen_audit(&self) -> &KernelAudit {
        match self.chosen {
            Choice::CStationary => &self.cstationary,
            Choice::BStationary => &self.bstationary,
        }
    }

    /// The audit side the oracle picked.
    pub fn oracle_audit(&self) -> &KernelAudit {
        match self.oracle {
            Choice::CStationary => &self.cstationary,
            Choice::BStationary => &self.bstationary,
        }
    }

    /// Speedup of the heuristic's pick over the baseline.
    pub fn chosen_speedup(&self) -> f64 {
        self.chosen_audit().speedup
    }

    /// Speedup of the oracle's pick over the baseline.
    pub fn oracle_speedup(&self) -> f64 {
        self.oracle_audit().speedup
    }

    /// Publish the audit into a metric registry: per-operand model
    /// relative-error gauges (`audit.model.<dataflow>.rel_err.<class>`),
    /// an absolute-relative-error histogram in percent
    /// (`audit.model.abs_rel_err_pct`), and mispick gauges/counters.
    /// Counters accumulate, so one shared context aggregates a sweep.
    pub fn publish(&self, obs: &ObsContext) {
        let m = &obs.metrics;
        for side in [&self.cstationary, &self.bstationary] {
            let df = side.dataflow.replace('-', "_");
            for v in &side.validation {
                m.gauge_set(&format!("audit.model.{df}.rel_err.{}", v.class), v.rel_err);
                m.histogram_record(
                    "audit.model.abs_rel_err_pct",
                    (v.rel_err.abs() * 100.0).round() as u64,
                );
            }
            m.gauge_set(
                &format!("audit.model.{df}.mean_abs_rel_err"),
                side.mean_abs_rel_err,
            );
        }
        m.counter_add("audit.decisions", 1);
        m.counter_add("audit.mispicks", self.mispick as u64);
        if let Some(fault) = &self.fault {
            m.counter_add("fault.escalations", 1);
            if fault.fell_back {
                m.counter_add("fault.fallbacks", 1);
            }
        }
        m.gauge_set("audit.mispick", self.mispick as u64 as f64);
        m.gauge_set("audit.mispick_cost", self.mispick_cost);
        m.histogram_record(
            "audit.mispick_cost_pct",
            ((self.mispick_cost - 1.0).max(0.0) * 100.0).round() as u64,
        );
    }

    /// Render the human-readable explain report the `audit` subcommand
    /// prints.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let choice_label = |c: Choice| match c {
            Choice::CStationary => "c-stationary",
            Choice::BStationary => "b-stationary",
        };
        let _ = writeln!(
            s,
            "matrix           : {} ({}x{}, nnz {})",
            self.matrix, self.nrows, self.ncols, self.nnz
        );
        let _ = writeln!(
            s,
            "SSF              : {:.4e} (threshold {:.3e}, tile {})",
            self.profile.ssf, self.threshold, self.tile
        );
        let _ = writeln!(
            s,
            "  inputs         : nnzrow_frac {:.4} | mean_strip_frac {:.4} | H_norm {:.4}",
            self.profile.nnzrow_frac, self.profile.mean_strip_frac, self.profile.h_norm
        );
        let verdict = if self.mispick {
            format!("MISPICK ({:.2}x slower than oracle)", self.mispick_cost)
        } else {
            "correct".to_string()
        };
        let _ = writeln!(
            s,
            "decision         : {} | oracle: {} | {}",
            choice_label(self.chosen),
            choice_label(self.oracle),
            verdict
        );
        if let Some(fault) = &self.fault {
            let _ = writeln!(s, "degraded mode    : {fault}");
        }
        let _ = writeln!(s, "baseline         : {:.2} us", self.baseline_ns / 1e3);
        for side in [&self.cstationary, &self.bstationary] {
            let marker = if side.dataflow == self.chosen_audit().dataflow {
                "  <- chosen"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "{:<17}: {:.2} us (speedup {:.2}x){marker}",
                side.dataflow,
                side.time_ns / 1e3,
                side.speedup
            );
            let _ = writeln!(
                s,
                "  {:<6} {:>14} {:>14} {:>9}",
                "class", "predicted B", "measured B", "rel err"
            );
            for v in &side.validation {
                let _ = writeln!(
                    s,
                    "  {:<6} {:>14.0} {:>14} {:>8.1}%",
                    v.class,
                    v.predicted_bytes,
                    v.measured_bytes,
                    v.rel_err * 100.0
                );
            }
            let _ = writeln!(
                s,
                "  model mean |rel err| : {:.1}%",
                side.mean_abs_rel_err * 100.0
            );
        }
        s
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("audit serializes")
    }
}
