//! The online conversion API of Figure 11: `GetDCSRTile`.
//!
//! On real hardware the intrinsic compiles into a message carrying the
//! current column frontier and the CSC/DCSR pointers; the FB partition's
//! conversion unit queues requests and processes them "in the order of
//! arrival". This module models that queueing layer: per-partition FIFOs,
//! strip→partition routing via the §6.1 layout, and stateful converters
//! that persist across sequential tile requests on the same strip.

use nmt_engine::placement::Layout;
use nmt_engine::{ConversionStats, StripConverter};
use nmt_formats::{Csc, DcsrTile, SparseMatrix};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One `GetDCSRTile` request (the arguments of Figure 11 that matter to
/// the queueing model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetDcsrTileRequest {
    /// Which vertical strip of A.
    pub strip_id: usize,
    /// First row of the requested tile.
    pub row_start: u32,
    /// Requesting SM (responses stream back to its shared memory).
    pub sm_id: usize,
}

/// A completed conversion: the tile plus its destination SM.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResponse {
    /// The request this answers.
    pub request: GetDcsrTileRequest,
    /// The freshly converted tile.
    pub tile: DcsrTile,
}

/// A served request with its queueing-model timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTileResponse {
    /// The converted tile and its request.
    pub response: TileResponse,
    /// Partition whose unit served it.
    pub partition: usize,
    /// Completion time relative to drain start, in nanoseconds.
    pub completed_at_ns: f64,
}

/// Per-FB-partition request queues in front of the conversion units.
pub struct ConversionQueue<'a> {
    csc: &'a Csc,
    tile_w: usize,
    tile_h: usize,
    layout: Layout,
    num_partitions: usize,
    queues: Vec<VecDeque<GetDcsrTileRequest>>,
    /// Live converters keyed by strip (state survives across tiles —
    /// the stateful frontier that makes sequential access free).
    converters: BTreeMap<usize, StripConverter<'a>>,
    /// Tracks each converter's expected next sequential row.
    next_row: BTreeMap<usize, u32>,
}

impl<'a> ConversionQueue<'a> {
    /// Build queues over `num_partitions` FB partitions.
    pub fn new(
        csc: &'a Csc,
        tile_w: usize,
        tile_h: usize,
        layout: Layout,
        num_partitions: usize,
    ) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        Self {
            csc,
            tile_w,
            tile_h,
            layout,
            num_partitions,
            queues: (0..num_partitions).map(|_| VecDeque::new()).collect(),
            converters: BTreeMap::new(),
            next_row: BTreeMap::new(),
        }
    }

    /// The partition whose conversion unit will serve this request.
    pub fn partition_for(&self, req: &GetDcsrTileRequest) -> usize {
        let tile_index = req.row_start as usize / self.tile_h;
        self.layout
            .partition_of(req.strip_id, tile_index, self.num_partitions)
            // nmt-lint: allow(panic) — `new` asserts num_partitions > 0, the only None case
            .expect("queue constructor enforces num_partitions > 0")
    }

    /// Enqueue a request ("queued and processed in the order of arrival").
    pub fn submit(&mut self, req: GetDcsrTileRequest) {
        let p = self.partition_for(&req);
        self.queues[p].push_back(req);
    }

    /// Requests waiting at partition `p`.
    pub fn pending(&self, p: usize) -> usize {
        self.queues[p].len()
    }

    /// Drain every queue round-robin (partitions work in parallel on real
    /// hardware; order within a partition is FIFO). Returns the responses
    /// in completion order.
    pub fn drain(&mut self) -> Vec<TileResponse> {
        let mut out = Vec::new();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for p in 0..self.num_partitions {
                if let Some(req) = self.queues[p].pop_front() {
                    out.push(self.serve(req));
                    progressed = true;
                }
            }
        }
        out
    }

    fn serve(&mut self, req: GetDcsrTileRequest) -> TileResponse {
        let csc = self.csc;
        let tile_w = self.tile_w;
        let conv = self
            .converters
            .entry(req.strip_id)
            .or_insert_with(|| StripConverter::new(csc, req.strip_id, tile_w));
        // Sequential requests reuse the live frontier; random ones seek.
        let expected = self.next_row.get(&req.strip_id).copied().unwrap_or(0);
        if req.row_start != expected {
            conv.seek(req.row_start);
        }
        let tile = conv.next_tile(req.row_start, self.tile_h);
        self.next_row
            .insert(req.strip_id, req.row_start + self.tile_h as u32);
        TileResponse { request: req, tile }
    }

    /// Drain with timing: each partition's conversion unit is a serial
    /// server processing its FIFO in arrival order at the engine's
    /// pipelined rate, all partitions in parallel. Returns the responses
    /// (with completion timestamps) and the per-partition busy times —
    /// the queueing view of §6.1's camping problem: under the naive
    /// layout one partition's server does all the work while the others
    /// idle, and the makespan is its busy time.
    pub fn drain_timed(
        &mut self,
        timing: &nmt_engine::EngineTiming,
    ) -> (Vec<TimedTileResponse>, Vec<f64>) {
        let mut busy_ns = vec![0.0f64; self.num_partitions];
        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)] // p is both queue index and label
        for p in 0..self.num_partitions {
            while let Some(req) = self.queues[p].pop_front() {
                let before = self
                    .converters
                    .get(&req.strip_id)
                    .map(nmt_engine::StripConverter::stats)
                    .unwrap_or_default();
                let resp = self.serve(req);
                let after = self.converters[&req.strip_id].stats();
                let delta = after.delta(&before);
                busy_ns[p] += timing.conversion_time_ns(&delta);
                out.push(TimedTileResponse {
                    response: resp,
                    partition: p,
                    completed_at_ns: busy_ns[p],
                });
            }
        }
        (out, busy_ns)
    }

    /// Total engine activity across all live converters.
    pub fn stats(&self) -> ConversionStats {
        let mut total = ConversionStats::default();
        for conv in self.converters.values() {
            total.merge(&conv.stats());
        }
        total
    }

    /// Number of strips in the underlying matrix.
    pub fn num_strips(&self) -> usize {
        nmt_formats::strip_count(self.csc.shape().ncols, self.tile_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::{Coo, Csr, TiledDcsr};

    fn sample_csc() -> Csc {
        let entries: Vec<(u32, u32)> = (0..40u32).map(|i| ((i * 13) % 32, (i * 7) % 32)).collect();
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals = vec![1.0f32; entries.len()];
        Csr::from_coo(&Coo::from_triplets(32, 32, &rows, &cols, &vals).unwrap()).to_csc()
    }

    #[test]
    fn sequential_requests_reproduce_offline_tiling() {
        let csc = sample_csc();
        let offline = TiledDcsr::from_csc(&csc, 8, 8).unwrap();
        let mut q = ConversionQueue::new(&csc, 8, 8, Layout::TileRotated, 4);
        for s in 0..q.num_strips() {
            for t in 0..4 {
                q.submit(GetDcsrTileRequest {
                    strip_id: s,
                    row_start: (t * 8) as u32,
                    sm_id: 0,
                });
            }
        }
        let responses = q.drain();
        assert_eq!(responses.len(), 16);
        for r in responses {
            let expected = &offline.strips()[r.request.strip_id][r.request.row_start as usize / 8];
            assert_eq!(&r.tile, expected);
        }
    }

    #[test]
    fn random_order_requests_still_correct() {
        let csc = sample_csc();
        let offline = TiledDcsr::from_csc(&csc, 8, 8).unwrap();
        let mut q = ConversionQueue::new(&csc, 8, 8, Layout::TileRotated, 4);
        // Out-of-order rows within a strip force seeks.
        for &(s, t) in &[(0usize, 3usize), (0, 0), (1, 2), (1, 2), (2, 1), (0, 3)] {
            q.submit(GetDcsrTileRequest {
                strip_id: s,
                row_start: (t * 8) as u32,
                sm_id: 1,
            });
        }
        for r in q.drain() {
            let expected = &offline.strips()[r.request.strip_id][r.request.row_start as usize / 8];
            assert_eq!(&r.tile, expected, "req {:?}", r.request);
        }
    }

    #[test]
    fn routing_respects_layout() {
        let csc = sample_csc();
        let q = ConversionQueue::new(&csc, 8, 8, Layout::StripPerPartition, 4);
        let naive0 = q.partition_for(&GetDcsrTileRequest {
            strip_id: 1,
            row_start: 0,
            sm_id: 0,
        });
        let naive1 = q.partition_for(&GetDcsrTileRequest {
            strip_id: 1,
            row_start: 8,
            sm_id: 0,
        });
        assert_eq!(naive0, naive1, "naive layout pins a strip to one partition");
        let q = ConversionQueue::new(&csc, 8, 8, Layout::TileRotated, 4);
        let rot0 = q.partition_for(&GetDcsrTileRequest {
            strip_id: 1,
            row_start: 0,
            sm_id: 0,
        });
        let rot1 = q.partition_for(&GetDcsrTileRequest {
            strip_id: 1,
            row_start: 8,
            sm_id: 0,
        });
        assert_ne!(rot0, rot1, "rotated layout spreads a strip's tiles");
    }

    #[test]
    fn pending_counts_track_queues() {
        let csc = sample_csc();
        let mut q = ConversionQueue::new(&csc, 8, 8, Layout::StripPerPartition, 4);
        q.submit(GetDcsrTileRequest {
            strip_id: 0,
            row_start: 0,
            sm_id: 0,
        });
        q.submit(GetDcsrTileRequest {
            strip_id: 0,
            row_start: 8,
            sm_id: 0,
        });
        assert_eq!(q.pending(0), 2);
        assert_eq!(q.pending(1), 0);
        q.drain();
        assert_eq!(q.pending(0), 0);
        assert!(q.stats().elements > 0);
    }
}

#[cfg(test)]
mod timed_tests {
    use super::*;
    use nmt_engine::{ComparatorTree, EngineTiming};
    use nmt_formats::{Coo, Csr};

    fn clustered_csc() -> Csc {
        // All non-zeros in strip 0 — the §6.1 camping pathology under the
        // naive layout.
        let entries: Vec<(u32, u32)> = (0..64u32).map(|i| (i % 32, i % 8)).collect();
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals = vec![1.0f32; entries.len()];
        Csr::from_coo(&Coo::from_triplets(32, 32, &rows, &cols, &vals).unwrap()).to_csc()
    }

    #[test]
    fn camping_layout_serializes_one_server() {
        let csc = clustered_csc();
        let timing = EngineTiming::fp32(13.6, &ComparatorTree::new(8).unwrap().structure());
        let submit_all = |q: &mut ConversionQueue| {
            for s in 0..q.num_strips() {
                for t in 0..4 {
                    q.submit(GetDcsrTileRequest {
                        strip_id: s,
                        row_start: (t * 8) as u32,
                        sm_id: 0,
                    });
                }
            }
        };
        let mut naive = ConversionQueue::new(&csc, 8, 8, Layout::StripPerPartition, 4);
        submit_all(&mut naive);
        let (_, naive_busy) = naive.drain_timed(&timing);
        let mut rotated = ConversionQueue::new(&csc, 8, 8, Layout::TileRotated, 4);
        submit_all(&mut rotated);
        let (responses, rot_busy) = rotated.drain_timed(&timing);

        let max = |v: &Vec<f64>| v.iter().copied().fold(0.0f64, f64::max);
        // The hot strip's work lands on one server under the naive layout;
        // rotation spreads it, shrinking the makespan.
        assert!(
            max(&rot_busy) < max(&naive_busy),
            "rotation must shrink the makespan: {:?} vs {:?}",
            rot_busy,
            naive_busy
        );
        // Completion times are monotone within each partition's FIFO.
        for p in 0..4 {
            let times: Vec<f64> = responses
                .iter()
                .filter(|r| r.partition == p)
                .map(|r| r.completed_at_ns)
                .collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
