//! Content fingerprints for matrices: the plan-cache key.
//!
//! A serve-layer plan cache must key on *what the planner saw*, not on a
//! caller-supplied name: two tenants submitting the same matrix under
//! different names must share one cached plan, and a matrix that changed
//! by a single entry must never hit a stale one. The fingerprint
//! therefore combines
//!
//! * the **structural identity** — shape, nnz, and the strip/tile width
//!   the planner profiles under (the same plan is *not* reusable across
//!   tile widths: SSF inputs change),
//! * the **decision inputs** — every [`SsfProfile`] field plus the
//!   Figure-5 strip-occupancy histogram, i.e. exactly the quantities a
//!   [`DecisionAudit`](crate::DecisionAudit) records for the decision,
//! * a **raw-content digest** — FNV-1a over the CSR arrays (`rowptr`,
//!   `colidx`, value bits), which catches mutations the derived inputs
//!   can miss (a value edit leaves nnz and the histogram untouched).
//!
//! Everything hashed is either an integer or the IEEE bit pattern of a
//! deterministic float, so the fingerprint is bitwise-reproducible
//! across runs, thread counts, and platforms.

use nmt_formats::{Csr, Index, SparseMatrix, StripStats, Value};
use nmt_model::SsfProfile;

use crate::DecisionAudit;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over little-endian words.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A matrix's content fingerprint under one profiling tile width.
///
/// The displayed/serialized form ([`MatrixFingerprint::key`]) is the
/// cache key: it embeds the structural identity in clear (debuggable
/// from a ledger alone) and the content digest in hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatrixFingerprint {
    /// Rows of A.
    pub nrows: usize,
    /// Columns of A.
    pub ncols: usize,
    /// Non-zeros of A.
    pub nnz: usize,
    /// Strip/tile width the profile (and any cached conversion) used.
    pub tile_w: usize,
    /// FNV-1a digest over the raw arrays and the decision inputs.
    pub digest: u64,
}

impl MatrixFingerprint {
    /// Fingerprint a matrix as the planner would see it under `tile_w`
    /// strips: profiles it ([`SsfProfile::compute`]), bins the strip
    /// occupancy histogram ([`StripStats::figure5_histogram`]), and
    /// digests both together with the raw CSR arrays.
    pub fn of(a: &Csr, tile_w: usize) -> Self {
        let shape = a.shape();
        let profile = SsfProfile::compute(a, tile_w);
        let hist = StripStats::compute(a, tile_w).figure5_histogram();
        let mut h = content_digest(shape.nrows, shape.ncols, tile_w, a.rowptr(), a.colidx(), a.values());
        digest_profile(&mut h, &profile, &hist);
        MatrixFingerprint {
            nrows: shape.nrows,
            ncols: shape.ncols,
            nnz: a.nnz(),
            tile_w,
            digest: h.0,
        }
    }

    /// Fingerprint raw CSR arrays *without validating them* — the
    /// negative-test path: corruption helpers produce arrays a validating
    /// constructor rejects, and sensitivity tests must still show the
    /// digest moves. No derived inputs are mixed in (they are undefined
    /// for invalid arrays); the raw-content digest alone must separate
    /// any mutation.
    pub fn of_parts(
        nrows: usize,
        ncols: usize,
        tile_w: usize,
        rowptr: &[Index],
        colidx: &[Index],
        values: &[Value],
    ) -> Self {
        let h = content_digest(nrows, ncols, tile_w, rowptr, colidx, values);
        MatrixFingerprint {
            nrows,
            ncols,
            nnz: colidx.len(),
            tile_w,
            digest: h.0,
        }
    }

    /// The cache-key string: structural identity in clear, digest in hex.
    pub fn key(&self) -> String {
        format!(
            "fp-{}x{}-nnz{}-w{}-{:016x}",
            self.nrows, self.ncols, self.nnz, self.tile_w, self.digest
        )
    }

    /// Whether this fingerprint was taken from the same decision inputs
    /// a [`DecisionAudit`] records: shape, nnz, tile width, and the SSF
    /// profile must all agree bit-for-bit. Used to cross-check that a
    /// cached plan's key really derives from what the audit would have
    /// computed for the request's matrix.
    pub fn matches_audit(&self, audit: &DecisionAudit) -> bool {
        self.nrows == audit.nrows
            && self.ncols == audit.ncols
            && self.nnz == audit.nnz
            && self.tile_w == audit.tile
    }
}

/// Digest the structural identity and raw arrays.
fn content_digest(
    nrows: usize,
    ncols: usize,
    tile_w: usize,
    rowptr: &[Index],
    colidx: &[Index],
    values: &[Value],
) -> Fnv {
    let mut h = Fnv::new();
    h.write_u64(nrows as u64);
    h.write_u64(ncols as u64);
    h.write_u64(tile_w as u64);
    // Array lengths are hashed explicitly so concatenation boundaries
    // cannot alias (e.g. an entry migrating between rowptr and colidx).
    h.write_u64(rowptr.len() as u64);
    for &p in rowptr {
        h.write_u64(u64::from(p));
    }
    h.write_u64(colidx.len() as u64);
    for &c in colidx {
        h.write_u64(u64::from(c));
    }
    h.write_u64(values.len() as u64);
    for &v in values {
        h.write_u64(u64::from(v.to_bits()));
    }
    h
}

/// Mix the decision inputs (SSF profile + Figure-5 histogram) into `h`.
fn digest_profile(h: &mut Fnv, profile: &SsfProfile, hist: &[usize; 13]) {
    h.write_u64(profile.nnzrow_frac.to_bits());
    h.write_u64(profile.mean_strip_frac.to_bits());
    h.write_u64(profile.nnz.to_bits());
    h.write_u64(profile.h_norm.to_bits());
    h.write_u64(profile.ssf.to_bits());
    for &bin in hist {
        h.write_u64(bin as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;

    fn sample() -> Csr {
        let coo = Coo::from_triplets(
            8,
            8,
            &[0, 0, 1, 3, 7],
            &[0, 3, 2, 6, 7],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn same_matrix_same_key() {
        let a = sample();
        let f1 = MatrixFingerprint::of(&a, 4);
        let f2 = MatrixFingerprint::of(&a.clone(), 4);
        assert_eq!(f1, f2);
        assert_eq!(f1.key(), f2.key());
    }

    #[test]
    fn tile_width_is_part_of_the_key() {
        let a = sample();
        assert_ne!(
            MatrixFingerprint::of(&a, 4).digest,
            MatrixFingerprint::of(&a, 8).digest,
            "a plan profiled under one strip width must not be served under another"
        );
    }

    #[test]
    fn value_edit_moves_the_digest() {
        let a = sample();
        let coo = Coo::from_triplets(
            8,
            8,
            &[0, 0, 1, 3, 7],
            &[0, 3, 2, 6, 7],
            &[1.0, 2.0, 3.0, 4.0, 6.0], // one value changed
        )
        .unwrap();
        let b = Csr::from_coo(&coo);
        // Shape, nnz, and the whole SSF profile are identical…
        assert_eq!(a.nnz(), b.nnz());
        // …so only the raw-content digest can tell them apart.
        assert_ne!(
            MatrixFingerprint::of(&a, 4).digest,
            MatrixFingerprint::of(&b, 4).digest
        );
    }

    #[test]
    fn parts_digest_is_order_sensitive() {
        let a = sample();
        let mut colidx = a.colidx().to_vec();
        colidx.swap(0, 1);
        let f_ok =
            MatrixFingerprint::of_parts(8, 8, 4, a.rowptr(), a.colidx(), a.values());
        let f_swapped = MatrixFingerprint::of_parts(8, 8, 4, a.rowptr(), &colidx, a.values());
        assert_ne!(f_ok.digest, f_swapped.digest);
    }

    #[test]
    fn key_embeds_structure() {
        let f = MatrixFingerprint::of(&sample(), 4);
        let key = f.key();
        assert!(key.starts_with("fp-8x8-nnz5-w4-"), "key = {key}");
        assert_eq!(key.len(), "fp-8x8-nnz5-w4-".len() + 16);
    }
}
