//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] decides — purely from `(seed, site, key)` — whether a
//! fault fires at a named [`FaultSite`]. Nothing here consults the clock,
//! thread identity, or any global state, so a faulted run is exactly as
//! reproducible as a clean one: the same plan produces the same faults at
//! the same `(site, strip)` points regardless of `RAYON_NUM_THREADS` or
//! scheduling order.
//!
//! Consumers roll faults with [`FaultPlan::fires`] at injection points and
//! record outcomes as [`FaultRecord`]s, which flow into the planner's
//! `DecisionAudit` and the bench ledger's error rows. The retry policy
//! ("retry the strip once, then escalate") draws its second roll from a
//! distinct salt via [`FaultPlan::retry_fires`], so the retry outcome is
//! just as deterministic as the original fault.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// One part-per-million scale: a `rate_ppm` of this value means "always".
pub const PPM_SCALE: u32 = 1_000_000;

/// A named injection point in the system.
///
/// Sites are coarse: the `key` passed to [`FaultPlan::fires`] selects the
/// instance (strip id, partition id, memory-access ordinal, ...) within
/// the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// Per-strip conversion failure in the engine farm (`engine::farm`).
    ConvertStrip,
    /// A converted tile's metadata is corrupted in flight and must be
    /// rejected by `validate()` with a typed `FormatError`.
    MetadataCorruption,
    /// A farm partition drops out before reduction (`engine::placement`).
    PartitionDropout,
    /// The sim's prefetch buffer overflows: an L2 hit is billed as a miss
    /// (`sim::memory`). Timing-only — numerical results are unaffected.
    PrefetchOverflow,
    /// A DRAM latency spike inflates the cost of one memory access
    /// (`sim::memory`). Timing-only — numerical results are unaffected.
    DramLatencySpike,
}

impl FaultSite {
    /// Stable per-site discriminant mixed into the fault hash (and used
    /// as the flight-recorder event sub-code, see
    /// `nmt_obs::recorder::EventSite::from_fault_code`). Never reorder
    /// these values: they are part of the reproducibility contract for a
    /// given seed.
    pub fn code(self) -> u64 {
        match self {
            FaultSite::ConvertStrip => 1,
            FaultSite::MetadataCorruption => 2,
            FaultSite::PartitionDropout => 3,
            FaultSite::PrefetchOverflow => 4,
            FaultSite::DramLatencySpike => 5,
        }
    }

    /// Human-readable site name (used in audit text and metric labels).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ConvertStrip => "convert-strip",
            FaultSite::MetadataCorruption => "metadata-corruption",
            FaultSite::PartitionDropout => "partition-dropout",
            FaultSite::PrefetchOverflow => "prefetch-overflow",
            FaultSite::DramLatencySpike => "dram-latency-spike",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded fault-injection plan.
///
/// The rate is stored in parts per million (an integer) so plans are `Eq`
/// and hashable and can ride inside configuration structs that derive
/// those traits. `rate_ppm = 0` never fires; `rate_ppm >= 1_000_000`
/// always fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed: two runs with the same seed fault identically.
    pub seed: u64,
    /// Fault probability per roll, in parts per million.
    pub rate_ppm: u32,
}

impl FaultPlan {
    /// Build a plan from a seed and a rate in parts per million.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        Self {
            seed,
            rate_ppm: rate_ppm.min(PPM_SCALE),
        }
    }

    /// Build a plan from a seed and a fractional rate in `[0, 1]`.
    pub fn from_rate(seed: u64, rate: f64) -> Self {
        let clamped = rate.clamp(0.0, 1.0);
        // Round to the nearest ppm so e.g. 0.3 survives the f64 trip.
        Self::new(seed, (clamped * f64::from(PPM_SCALE)).round() as u32)
    }

    /// Read a plan from `NMT_FAULT_SEED` / `NMT_FAULT_RATE`. Returns
    /// `None` when the seed variable is absent or unparsable; a missing
    /// or unparsable rate defaults to 0.05 (50 000 ppm).
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var("NMT_FAULT_SEED").ok()?.parse().ok()?;
        let rate = std::env::var("NMT_FAULT_RATE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.05);
        Some(Self::from_rate(seed, rate))
    }

    /// The fractional fault rate this plan encodes.
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / f64::from(PPM_SCALE)
    }

    /// Does a fault fire at `(site, key)`? Pure: depends only on the
    /// plan's seed/rate and the arguments.
    pub fn fires(&self, site: FaultSite, key: u64) -> bool {
        self.roll(site, key, 0)
    }

    /// Does the *retry* of a previously faulted `(site, key)` fail too?
    /// Uses a distinct salt so the retry is an independent — but equally
    /// deterministic — draw.
    pub fn retry_fires(&self, site: FaultSite, key: u64) -> bool {
        self.roll(site, key, 1)
    }

    fn roll(&self, site: FaultSite, key: u64, salt: u64) -> bool {
        if self.rate_ppm == 0 {
            return false;
        }
        if self.rate_ppm >= PPM_SCALE {
            return true;
        }
        let h = mix(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(site.code())
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                .wrapping_add(key)
                .wrapping_mul(0x94d0_49bb_1331_11eb)
                .wrapping_add(salt),
        );
        (h % u64::from(PPM_SCALE)) < u64::from(self.rate_ppm)
    }
}

/// Finalizer from splitmix64: a cheap, well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The audited outcome of one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Where the fault fired.
    pub site: FaultSite,
    /// Which instance within the site (strip id, partition id, ...).
    pub key: u64,
    /// Whether the degraded-mode policy retried the operation.
    pub retried: bool,
    /// Whether the planner fell back from B-stationary to the untiled
    /// C-stationary path in response.
    pub fell_back: bool,
    /// Human-readable description of what was injected.
    pub detail: String,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault at {}#{}: {}{}{}",
            self.site,
            self.key,
            self.detail,
            if self.retried { " (retried)" } else { "" },
            if self.fell_back {
                " (fell back to c-stationary)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::new(42, 0);
        for key in 0..10_000 {
            assert!(!plan.fires(FaultSite::ConvertStrip, key));
            assert!(!plan.retry_fires(FaultSite::ConvertStrip, key));
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultPlan::from_rate(42, 1.0);
        assert_eq!(plan.rate_ppm, PPM_SCALE);
        for key in 0..100 {
            assert!(plan.fires(FaultSite::PartitionDropout, key));
        }
    }

    #[test]
    fn same_seed_same_faults() {
        let a = FaultPlan::from_rate(7, 0.1);
        let b = FaultPlan::from_rate(7, 0.1);
        for key in 0..5_000 {
            assert_eq!(
                a.fires(FaultSite::ConvertStrip, key),
                b.fires(FaultSite::ConvertStrip, key)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::from_rate(1, 0.5);
        let b = FaultPlan::from_rate(2, 0.5);
        let diverged = (0..1_000).any(|key| {
            a.fires(FaultSite::ConvertStrip, key) != b.fires(FaultSite::ConvertStrip, key)
        });
        assert!(diverged, "distinct seeds should produce distinct fault sets");
    }

    #[test]
    fn sites_are_independent_streams() {
        let plan = FaultPlan::from_rate(9, 0.5);
        let diverged = (0..1_000).any(|key| {
            plan.fires(FaultSite::ConvertStrip, key) != plan.fires(FaultSite::DramLatencySpike, key)
        });
        assert!(diverged, "sites should not share a fault stream");
    }

    #[test]
    fn retry_is_a_distinct_draw() {
        let plan = FaultPlan::from_rate(11, 0.5);
        let diverged =
            (0..1_000).any(|key| {
                plan.fires(FaultSite::ConvertStrip, key)
                    != plan.retry_fires(FaultSite::ConvertStrip, key)
            });
        assert!(diverged, "retry rolls should not mirror the original roll");
    }

    #[test]
    fn empirical_rate_tracks_requested_rate() {
        let plan = FaultPlan::from_rate(3, 0.25);
        let hits = (0..100_000u64)
            .filter(|&key| plan.fires(FaultSite::PrefetchOverflow, key))
            .count();
        let observed = hits as f64 / 100_000.0;
        assert!(
            (observed - 0.25).abs() < 0.02,
            "observed rate {observed} too far from 0.25"
        );
    }

    #[test]
    fn rate_roundtrips_through_ppm() {
        let plan = FaultPlan::from_rate(0, 0.3);
        assert_eq!(plan.rate_ppm, 300_000);
        assert!((plan.rate() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn record_serializes_and_displays() {
        let rec = FaultRecord {
            site: FaultSite::ConvertStrip,
            key: 4,
            retried: true,
            fell_back: true,
            detail: "strip conversion failed".into(),
        };
        let json = serde_json::to_string(&rec).expect("serializes");
        let back: FaultRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, rec);
        let text = rec.to_string();
        assert!(text.contains("convert-strip#4"));
        assert!(text.contains("retried"));
        assert!(text.contains("fell back"));
    }
}
